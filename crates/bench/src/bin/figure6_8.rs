//! Figures 6 and 8 — example interesting and uninteresting aggregates
//! found by Spade (qualitative result; variance as the score).
//!
//! Figure 6's stories on the real data: (a) min netWorth of CEOs by gender
//! and occupation has male-philanthropist/shareholder outliers; (b) launch
//! counts by launchsite × spacecraft/agency peak at Plesetsk/Baikonur for
//! USSR; (c) avg spacecraft mass by discipline peaks for Human crew /
//! Microgravity / Life sciences / Repair. The simulated graphs plant the
//! same stories; this binary shows where they rank.
//!
//! Run: `cargo run -p spade-bench --release --bin figure6_8 [-- --scale N]`

use spade_bench::{experiment_config, HarnessArgs};
use spade_core::{Spade, SpadeConfig};
use spade_datagen::{realistic, RealisticConfig};

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };

    for (name, mut graph) in [("CEOs", realistic::ceos(&cfg)), ("NASA", realistic::nasa(&cfg))]
    {
        let config = SpadeConfig { k: 8, ..experiment_config() };
        let report = Spade::new(config).run(&mut graph);

        println!("=== Figure 6 — top interesting aggregates on {name} ===");
        for (rank, t) in report.top.iter().enumerate() {
            println!("{:>2}. [score {:>12.4}] {}", rank + 1, t.score, t.description());
            for (label, value) in t.sample_groups.iter().take(6) {
                println!("       {label:<40} {value:>14.2}");
            }
        }
        println!();
    }

    // Figure 8: uninteresting aggregates — near-uniform results rank last.
    let mut graph = realistic::ceos(&cfg);
    let config = SpadeConfig { k: usize::MAX, ..experiment_config() };
    let report = Spade::new(config).run(&mut graph);
    println!("=== Figure 8 — least interesting (near-uniform) aggregates on CEOs ===");
    for t in report.top.iter().rev().take(5) {
        println!("    [score {:>12.6}] {}", t.score, t.description());
    }
    println!();
    println!(
        "paper's example: 'min numOf(occupations) by gender, numOf(companies)' — all \
         values uniformly 1 → variance 0, ranked last"
    );
}
