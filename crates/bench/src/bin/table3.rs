//! Table 3 / Experiment 2 — number of aggregates computed incorrectly by
//! PGCube\* and PGCube^d on each graph (MVDCube's results as ground truth).
//!
//! Expected shape (R4): both systems wrong on a noticeable share of
//! aggregates (paper: 14% and 12% overall); errors concentrate on the
//! graphs with most multi-valued attributes (CEOs, NASA, Nobel); Airline
//! (single-valued) has zero errors; PGCube^d ≤ PGCube\*.
//!
//! Run: `cargo run -p spade-bench --release --bin table3 [-- --scale N]`

use spade_bench::{compare_systems, experiment_config, regen_graph, HarnessArgs};
use spade_datagen::RealisticConfig;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };
    let config = experiment_config();

    println!(
        "Table 3: PGCube* and PGCube^d errors on real-graph aggregates (scale {})",
        args.scale
    );
    println!(
        "{:<10} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "Dataset", "#aggs", "#wrong(*)", "%", "#wrong(^d)", "%"
    );
    spade_bench::rule(64);
    let mut total = (0usize, 0usize, 0usize);
    for name in ["Airline", "CEOs", "DBLP", "Foodista", "NASA", "Nobel"] {
        let mut graph = regen_graph(name, &cfg);
        let c = compare_systems(name, &mut graph, &config);
        println!(
            "{:<10} {:>8} {:>12} {:>7.1}% {:>12} {:>7.1}%",
            c.name,
            c.aggregates,
            c.star_report.wrong_aggregates,
            100.0 * c.star_report.wrong_fraction(),
            c.distinct_report.wrong_aggregates,
            100.0 * c.distinct_report.wrong_fraction(),
        );
        total.0 += c.aggregates;
        total.1 += c.star_report.wrong_aggregates;
        total.2 += c.distinct_report.wrong_aggregates;
    }
    spade_bench::rule(64);
    println!(
        "{:<10} {:>8} {:>12} {:>7.1}% {:>12} {:>7.1}%",
        "ALL",
        total.0,
        total.1,
        100.0 * total.1 as f64 / total.0.max(1) as f64,
        total.2,
        100.0 * total.2 as f64 / total.0.max(1) as f64,
    );
    println!();
    println!("paper: PGCube* wrong on 14% of aggregates, PGCube^d on 12% (R4); Airline 0;");
    println!("CEOs/NASA/Nobel carry the most errors (most multi-valued attributes).");
}
