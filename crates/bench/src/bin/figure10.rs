//! Figure 10 / Experiment 3 — distribution of PGCube^d error ratios
//! `p/m` (baseline over correct) for count and sum aggregates, per dataset.
//!
//! Expected shape (R5): ratios are always > 1 (overcounting) and can exceed
//! an order of magnitude; the worst ratios come from lattices whose
//! dimensions are all multi-valued.
//!
//! Run: `cargo run -p spade-bench --release --bin figure10 [-- --scale N]`

use spade_bench::{compare_systems, experiment_config, regen_graph, HarnessArgs};
use spade_datagen::RealisticConfig;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };
    let config = experiment_config();

    println!("Figure 10: PGCube error-ratio distributions p/m (scale {})", args.scale);
    println!(
        "{:<10} {:<9} {:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "Dataset", "system", "agg", "#ratios", "p25", "median", "p75", "p95", "max"
    );
    spade_bench::rule(84);
    for name in ["CEOs", "DBLP", "NASA", "Nobel"] {
        let mut graph = regen_graph(name, &cfg);
        let c = compare_systems(name, &mut graph, &config);
        // Our PGCube^d rewrites fact counts as count(distinct CF), which
        // repairs them fully, so its count-ratio row is empty by design;
        // PGCube*'s row shows the unrepaired count errors.
        for (system, report) in [("PGCube*", &c.star_report), ("PGCube^d", &c.distinct_report)]
        {
            for kind in ["count", "sum"] {
                let mut ratios: Vec<f64> = report
                    .error_ratios
                    .iter()
                    .filter(|(label, _)| label.starts_with(kind))
                    .flat_map(|(_, r)| r.iter().copied())
                    .collect();
                ratios.sort_by(f64::total_cmp);
                println!(
                    "{:<10} {:<9} {:<6} {:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.2}",
                    name,
                    system,
                    kind,
                    ratios.len(),
                    quantile(&ratios, 0.25),
                    quantile(&ratios, 0.5),
                    quantile(&ratios, 0.75),
                    quantile(&ratios, 0.95),
                    ratios.last().copied().unwrap_or(f64::NAN),
                );
            }
        }
    }
    println!();
    println!("paper: in 3 of 4 datasets at least one group exceeds 30×; CEOs shows a >10³");
    println!("ratio from a three-dimensional lattice with all dimensions multi-valued (R5).");
}
