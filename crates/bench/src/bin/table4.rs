//! Table 4 / Experiment 4 — early-stop effectiveness on the six graphs:
//! evaluation time without and with ES, gain%, pruned%, and top-k accuracy
//! for k ∈ {3, 5, 10}, sample size 60, 2 batches.
//!
//! Expected shape (R6/R7): ES gains up to ~10–43% and prunes up to ~70%+ of
//! aggregates on graphs with many aggregates; accuracy is 100% in most
//! cells; occasionally ES costs a little more than it saves (sampling
//! overhead) on tiny workloads.
//!
//! Run: `cargo run -p spade-bench --release --bin table4 [-- --scale N]`

use spade_bench::{
    analyzed_lattices, evaluate_all_mvd, evaluate_all_mvd_es, experiment_config, ms,
    regen_graph, topk_accuracy, HarnessArgs,
};
use spade_cube::EarlyStopConfig;
use spade_datagen::RealisticConfig;
use spade_stats::Interestingness;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };
    let config = experiment_config();

    println!("Table 4: early-stop effectiveness (sample 60, 2 batches; scale {})", args.scale);
    println!(
        "{:<10} {:>3} {:>10} {:>10} {:>8} {:>9} {:>7}",
        "Dataset", "k", "MVD ms", "MVD+ES ms", "gain%", "pruned%", "acc%"
    );
    spade_bench::rule(64);

    for name in ["Airline", "CEOs", "DBLP", "Foodista", "NASA", "Nobel"] {
        for k in [3usize, 5, 10] {
            let mut graph = regen_graph(name, &cfg);
            let prepared = analyzed_lattices(&mut graph, &config);
            let (full, t_full) = evaluate_all_mvd(&prepared, &config);
            let es_cfg = EarlyStopConfig {
                k,
                h: Interestingness::Variance,
                ..EarlyStopConfig::default()
            };
            let (es, pruned, total, t_es) = evaluate_all_mvd_es(&prepared, &config, &es_cfg);
            let gain = 100.0 * (t_full.as_secs_f64() - t_es.as_secs_f64())
                / t_full.as_secs_f64().max(1e-9);
            let pruned_pct = 100.0 * pruned as f64 / total.max(1) as f64;
            let acc = 100.0 * topk_accuracy(&full, &es, Interestingness::Variance, k);
            println!(
                "{:<10} {:>3} {:>10} {:>10} {:>7.1}% {:>8.1}% {:>6.1}%",
                name,
                k,
                ms(t_full),
                ms(t_es),
                gain,
                pruned_pct,
                acc,
            );
        }
    }
    println!();
    println!("paper: gains 10–43% where >100 aggregates exist; pruned frequently ≥70%;");
    println!("accuracy 100% in the majority of cells (Nobel being the hard case).");
    println!();
    println!("reproduction note: pruned% and accuracy match the paper's shape, but the");
    println!("time gain does not transfer to this fully in-memory engine — the paper's");
    println!("evaluation loads measures from PostgreSQL, so skipping an aggregate saves");
    println!("real I/O; here measure computation is a cached array scan and the sampling");
    println!("overhead dominates at laptop scale (the paper itself observes negative ES");
    println!("impact 'due to a sampling overhead' on its smallest workloads).");
}
