//! `bench_ingest` — the offline-phase (ingestion + saturation) trajectory.
//!
//! Serializes simulated Table-2 graphs (with a deterministic RDFS ontology
//! overlay, see `spade_datagen::nt`) to N-Triples text, then measures the
//! full offline phase with (a) the optimized subsystem — parallel zero-copy
//! parsing, str-keyed two-phase dictionary interning, sort+dedup graph
//! build, semi-naive saturation — and (b) the preserved serial baseline
//! (`ingest_baseline` + `saturate_baseline`), and writes
//! `BENCH_ingest.json` with triples/sec for both and the speedup. The
//! optimized and baseline graphs are cross-checked for exact agreement
//! (ids, triple order, saturated triple set), so the bench doubles as a
//! correctness smoke test.
//!
//! Usage: `cargo run --release -p spade-bench --bin bench_ingest
//! [--scale <facts>] [--seed <n>] [--threads <n>] [--out <path>]`

use spade_bench::{geo_mean, HarnessArgs};
use spade_core::json::JsonWriter;
use spade_datagen::corpus::{NtCase, NT_CASES};
use spade_rdf::{ingest, ingest_baseline, saturate_baseline, saturate_with_threads, Graph};
use std::time::Instant;

struct Outcome {
    name: String,
    n_triples: usize,
    derived: usize,
    baseline_secs: f64,
    optimized_secs: f64,
    baseline_triples_per_sec: f64,
    optimized_triples_per_sec: f64,
    speedup: f64,
}

fn check_agreement(a: &Graph, b: &Graph, case: &str) {
    assert_eq!(a.len(), b.len(), "{case}: triple count");
    assert_eq!(a.triples(), b.triples(), "{case}: triple order");
    assert_eq!(a.dict.len(), b.dict.len(), "{case}: dictionary size");
    for (id, term) in a.dict.iter() {
        assert_eq!(b.dict.term(id), term, "{case}: term {id}");
    }
}

fn sorted_triples(g: &Graph) -> Vec<spade_rdf::Triple> {
    let mut v = g.triples().to_vec();
    v.sort_unstable();
    v
}

fn run_case(case: &NtCase, scale: usize, seed: u64, threads: usize, repeats: usize) -> Outcome {
    let nt = case.generate(scale, seed);
    let n_triples = nt.lines().count();

    // Agreement check (not timed): both paths parse and saturate to the
    // same graph.
    let mut reference = ingest_baseline(&nt).expect("baseline parse");
    let optimized = ingest(&nt, threads).expect("optimized parse");
    check_agreement(&optimized, &reference, case.name);
    let derived = saturate_baseline(&mut reference);
    let mut optimized = optimized;
    assert_eq!(
        saturate_with_threads(&mut optimized, threads),
        derived,
        "{}: derivation count",
        case.name
    );
    assert_eq!(
        sorted_triples(&optimized),
        sorted_triples(&reference),
        "{}: saturated triple sets",
        case.name
    );

    // Offline phase = parse + saturate; saturation mutates, so each repeat
    // re-parses (timed) and saturates the fresh graph (timed).
    let mut baseline_secs = f64::INFINITY;
    let mut optimized_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        let mut g = ingest_baseline(&nt).unwrap();
        saturate_baseline(&mut g);
        baseline_secs = baseline_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&g);

        let t = Instant::now();
        let mut g = ingest(&nt, threads).unwrap();
        saturate_with_threads(&mut g, threads);
        optimized_secs = optimized_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&g);
    }

    Outcome {
        name: case.name.to_owned(),
        n_triples,
        derived,
        baseline_secs,
        optimized_secs,
        baseline_triples_per_sec: n_triples as f64 / baseline_secs,
        optimized_triples_per_sec: n_triples as f64 / optimized_secs,
        speedup: baseline_secs / optimized_secs,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    // Larger default than the shared harness: ingestion throughput needs
    // enough lines to swamp constant costs. An explicit --scale always wins.
    let scale = args.scale_or(2_000);
    let out_path = args.out_path("BENCH_ingest.json");

    let mut outcomes = Vec::new();
    for case in &NT_CASES {
        let o = run_case(case, scale, args.seed, args.threads, 3);
        eprintln!(
            "{:14} {:7} triples (+{:6} derived) | baseline {:8.1} ms ({:9.0} t/s) | optimized {:8.1} ms ({:9.0} t/s) | speedup {:.2}x",
            o.name,
            o.n_triples,
            o.derived,
            o.baseline_secs * 1e3,
            o.baseline_triples_per_sec,
            o.optimized_secs * 1e3,
            o.optimized_triples_per_sec,
            o.speedup,
        );
        outcomes.push(o);
    }

    let speedups: Vec<f64> = outcomes.iter().map(|o| o.speedup).collect();
    let geo_mean_speedup = geo_mean(&speedups);

    // Shared deterministic writer (spade_core::json) — no serde offline.
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("bench").string("offline_ingest");
    w.key("baseline").string(
        "serial String-per-term parse + per-insert intern + fixpoint re-scan saturation",
    );
    w.key("optimized").string(
        "parallel zero-copy parse + two-phase str-keyed intern + sort/dedup build + semi-naive saturation",
    );
    w.key("geo_mean_speedup").f64_fixed(geo_mean_speedup, 4);
    w.key("cases").begin_array();
    for o in &outcomes {
        w.begin_object();
        w.key("name").string(&o.name);
        w.key("n_triples").usize(o.n_triples);
        w.key("derived_triples").usize(o.derived);
        w.key("baseline_secs").f64_fixed(o.baseline_secs, 6);
        w.key("optimized_secs").f64_fixed(o.optimized_secs, 6);
        w.key("baseline_triples_per_sec").f64_fixed(o.baseline_triples_per_sec, 1);
        w.key("optimized_triples_per_sec").f64_fixed(o.optimized_triples_per_sec, 1);
        w.key("speedup").f64_fixed(o.speedup, 4);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write BENCH_ingest.json");
    println!("{json}");
    eprintln!("geo-mean offline speedup {geo_mean_speedup:.2}x → {out_path}");
}
