//! Figure 9 / Experiment 2 — run times (log scale in the paper) of
//! MVDCube vs PGCube\* vs PGCube^d on the six graphs, derivations enabled,
//! early-stop disabled.
//!
//! Expected shape (R2/R3): MVDCube gains 20–80% over PGCube\* and 30–83%
//! over PGCube^d wherever more than ~15 aggregates are evaluated; on tiny
//! workloads (Foodista) both run in the noise.
//!
//! Run: `cargo run -p spade-bench --release --bin figure9 [-- --scale N]`

use spade_bench::{compare_systems, experiment_config, ms, regen_graph, HarnessArgs};
use spade_datagen::RealisticConfig;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };
    let config = experiment_config();

    println!("Figure 9: aggregate-evaluation run times, ms (scale {})", args.scale);
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Dataset", "#aggs", "MVDCube", "PGCube*", "PGCube^d", "gain*%", "gain^d%"
    );
    spade_bench::rule(74);
    for name in ["Airline", "CEOs", "DBLP", "Foodista", "NASA", "Nobel"] {
        let mut graph = regen_graph(name, &cfg);
        let c = compare_systems(name, &mut graph, &config);
        let gain = |base: std::time::Duration| {
            100.0 * (base.as_secs_f64() - c.mvd.as_secs_f64()) / base.as_secs_f64().max(1e-9)
        };
        println!(
            "{:<10} {:>7} {:>10} {:>10} {:>10} {:>9.1}% {:>9.1}%",
            c.name,
            c.aggregates,
            ms(c.mvd),
            ms(c.star),
            ms(c.distinct),
            gain(c.star),
            gain(c.distinct),
        );
    }
    println!();
    println!("paper: MVDCube 20–80% faster than PGCube*, 30–83% than PGCube^d (R2),");
    println!("winning whenever >15 aggregates are evaluated (R3).");
}
