//! Table 2 — dataset profile: #triples, #CFSs, #P, #A without derivations,
//! #DP per kind (kw, lang, count, path), #A with derivations.
//!
//! Run: `cargo run -p spade-bench --release --bin table2 [-- --scale N]`

use spade_bench::{experiment_config, HarnessArgs};
use spade_core::Spade;
use spade_datagen::{realistic, RealisticConfig};

fn main() {
    let args = HarnessArgs::parse();
    let cfg = RealisticConfig { scale: args.scale, seed: args.seed };

    println!("Table 2: real datasets used for testing (simulated, scale {})", args.scale);
    println!(
        "{:<10} {:>9} {:>6} {:>5} {:>8} | {:>5} {:>5} {:>6} {:>6} | {:>8}",
        "Dataset", "#triples", "#CFSs", "#P", "#A woD", "kw", "lang", "count", "path", "#A wD"
    );
    spade_bench::rule(92);

    for dataset in realistic::all(&cfg) {
        // Without derivations.
        let mut g1 = dataset.graph;
        let wod_report = Spade::new(experiment_config().without_derivations()).run(&mut g1);
        // With derivations (fresh copy of the graph: saturation mutates).
        let mut g2 = regenerate(dataset.name, &cfg);
        let wd_report = Spade::new(experiment_config()).run(&mut g2);

        let d = wd_report.profile.derivations;
        println!(
            "{:<10} {:>9} {:>6} {:>5} {:>8} | {:>5} {:>5} {:>6} {:>6} | {:>8}",
            dataset.name,
            wd_report.profile.triples,
            wd_report.profile.cfs_count,
            wd_report.profile.direct_properties,
            wod_report.profile.aggregates,
            d.kw,
            d.lang,
            d.count,
            d.path,
            wd_report.profile.aggregates,
        );
    }
    println!();
    println!("Paper (Table 2, real dumps): Airline 56M/1/30/5923 woD, 0 DP, 5923 wD;");
    println!("CEOs 85k/237/61/159 woD, 501 DP, 27860 wD; … — shapes to compare:");
    println!("(1) Airline gets no derivations; (2) native-RDF graphs multiply #A via DP.");
}

fn regenerate(name: &str, cfg: &RealisticConfig) -> spade_rdf::Graph {
    match name {
        "Airline" => realistic::airline(&RealisticConfig { scale: cfg.scale * 8, ..*cfg }),
        "CEOs" => realistic::ceos(cfg),
        "DBLP" => realistic::dblp(&RealisticConfig { scale: cfg.scale * 4, ..*cfg }),
        "Foodista" => realistic::foodista(&RealisticConfig { scale: cfg.scale * 2, ..*cfg }),
        "NASA" => realistic::nasa(cfg),
        "Nobel" => realistic::nobel(cfg),
        other => panic!("unknown dataset {other}"),
    }
}
