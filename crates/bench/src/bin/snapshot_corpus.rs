//! `snapshot_corpus` — writes a `spade-store` snapshot of a simulated
//! corpus to disk, so shell-level consumers (the CI loopback smoke job,
//! manual `spade-serve` runs) can produce a servable file without writing
//! Rust.
//!
//! Usage: `cargo run --release -p spade-bench --bin snapshot_corpus --
//! [--scale <facts>] [--seed <n>] [--threads <n>] [--out <path>] [dataset]`
//!
//! `dataset` is one of the six simulated graphs (`CEOs` by default; see
//! `spade_bench::regen_graph`). Prints the written path and triple count.

use spade_bench::{regen_graph, HarnessArgs};
use spade_core::{Spade, SpadeConfig};
use spade_datagen::RealisticConfig;

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale_or(300);
    let out = args.out_path("corpus.spade");
    let dataset = args.rest.first().map(String::as_str).unwrap_or("CEOs");

    let graph = regen_graph(dataset, &RealisticConfig { scale, seed: args.seed });
    let nt = spade_rdf::write_ntriples(&graph);
    let spade = Spade::new(SpadeConfig { threads: args.threads, ..Default::default() });
    spade.snapshot_ntriples(&nt, &out).expect("snapshot written");
    let bytes = std::fs::metadata(&out).expect("written file").len();
    eprintln!("{dataset} scale {scale} → {} triples, {bytes} B at {out}", graph.len());
}
