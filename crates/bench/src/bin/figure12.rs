//! Figure 12 / Experiment 6 — scalability of the online pipeline in the
//! number of facts (a), measures (b), and dimensions (c), with the
//! Aggregate Evaluation step executed through PGCube\*, MVDCube, and
//! MVDCube + early-stop.
//!
//! Base configuration (paper): |CFS| = 5M, N = 3, M = 15, uniform 100-value
//! dimensions, sparsity 0.1 — scaled by 1/20 by default.
//!
//! Expected shape (R9): MVDCube scales linearly in |CFS| and M, grows
//! faster in N; it beats PGCube\* by up to 2.9×; MVDCube+ES is fastest.
//!
//! Run: `cargo run -p spade-bench --release --bin figure12 -- [facts|measures|dims]`

use spade_bench::{ms, HarnessArgs};
use spade_cube::{EarlyStopConfig, PgCubeVariant};
use spade_datagen::{synthetic, SyntheticConfig};
use spade_storage::AggFn;
use std::time::Duration;

/// Evaluation time of the three systems on one synthetic configuration.
fn run_config(cfg: &SyntheticConfig) -> (Duration, Duration, Duration) {
    let cols = synthetic::generate_columns(cfg);
    let dims: Vec<_> = cols.dims.iter().collect();
    let measures: Vec<_> = cols
        .measures
        .iter()
        .map(|m| spade_cube::MeasureSpec { preagg: m, fns: vec![AggFn::Sum, AggFn::Avg] })
        .collect();
    let spec = spade_cube::CubeSpec::new(dims, measures, cols.n_facts);
    let opts = Default::default();

    let (_, t_pg) =
        spade_bench::timed(|| spade_cube::pg_cube(&spec, PgCubeVariant::Star, &opts));
    let (_, t_mvd) = spade_bench::timed(|| spade_cube::mvd_cube(&spec, &opts));
    let es = EarlyStopConfig { k: 10, ..Default::default() };
    let (_, t_es) =
        spade_bench::timed(|| spade_cube::mvd_cube_with_earlystop(&spec, &opts, &es));
    (t_pg, t_mvd, t_es)
}

fn print_row(label: &str, t: (Duration, Duration, Duration)) {
    let speedup = t.0.as_secs_f64() / t.1.as_secs_f64().max(1e-9);
    println!("{:<14} {:>12} {:>12} {:>12} {:>9.2}x", label, ms(t.0), ms(t.1), ms(t.2), speedup);
}

fn header(title: &str) {
    println!("{title}");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "param", "PGCube*", "MVDCube", "MVD+ES", "PG/MVD"
    );
    spade_bench::rule(64);
}

fn main() {
    let args = HarnessArgs::parse();
    let which = args.rest.first().map(String::as_str).unwrap_or("all");
    // Paper's base: |CFS| = 5M, scaled 1/20 → 250k at default scale.
    let base_facts = 250_000 * args.scale / spade_bench::DEFAULT_SCALE;
    let base = SyntheticConfig {
        n_facts: base_facts,
        dim_values: vec![100, 100, 100],
        n_measures: 15,
        sparsity: 0.1,
        multi_valued_prob: 0.0,
        seed: args.seed,
    };

    if which == "facts" || which == "all" {
        header(&format!(
            "Figure 12a: varying |CFS| (paper 1M..10M, here x{} smaller)",
            5_000_000 / base_facts.max(1)
        ));
        for mult in [0.2, 0.5, 1.0, 1.5, 2.0] {
            let cfg = SyntheticConfig {
                n_facts: (base_facts as f64 * mult) as usize,
                ..base.clone()
            };
            print_row(&format!("{}k facts", cfg.n_facts / 1000), run_config(&cfg));
        }
        println!();
    }
    if which == "measures" || which == "all" {
        header("Figure 12b: varying M (paper 5..30)");
        for m in [5usize, 10, 15, 20, 25, 30] {
            let cfg = SyntheticConfig { n_measures: m, ..base.clone() };
            print_row(&format!("M={m}"), run_config(&cfg));
        }
        println!();
    }
    if which == "dims" || which == "all" {
        header("Figure 12c: varying N (paper 1..4)");
        for n in 1usize..=4 {
            let cfg = SyntheticConfig { dim_values: vec![100; n], ..base.clone() };
            print_row(&format!("N={n}"), run_config(&cfg));
        }
        println!();
    }
    println!("paper (R9): MVDCube linear in |CFS| and M, steeper in N; up to 2.9x over");
    println!("PGCube*; MVDCube+ES consistently fastest.");
}
