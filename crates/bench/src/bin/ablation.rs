//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **partition (chunk) size** — ArrayCube's memory/speed knob
//!    (Section 4.1: "cells are grouped in partitions"); the sweep shows the
//!    bookkeeping cost of small chunks vs the memory of one big partition;
//! 2. **cross-lattice sharing** — "Spade ensures that the results of
//!    evaluated MDAs are reused (not recomputed) in the other lattices"
//!    (Section 3 Step 3): evaluation with vs without the dedup map;
//! 3. **early-stop sample size / batches** — the Section 5.3 knobs the
//!    paper fixed empirically at 60 × 2.
//!
//! Run: `cargo run -p spade-bench --release --bin ablation [-- --scale N]`

use spade_bench::{
    analyzed_lattices, build_spec, experiment_config, ms, regen_graph, timed, HarnessArgs,
};
use spade_core::evaluate::evaluate_cfs;
use spade_cube::{mvd_cube, mvd_cube_with_earlystop, EarlyStopConfig, MvdCubeOptions};
use spade_datagen::{synthetic, RealisticConfig, SyntheticConfig};
use spade_storage::AggFn;

fn main() {
    let args = HarnessArgs::parse();

    // —— 1. chunk size sweep on a synthetic cube ——
    let cols = synthetic::generate_columns(&SyntheticConfig {
        n_facts: 100_000 * args.scale / spade_bench::DEFAULT_SCALE,
        dim_values: vec![100, 100, 100],
        n_measures: 5,
        sparsity: 0.1,
        seed: args.seed,
        ..Default::default()
    });
    let dims: Vec<_> = cols.dims.iter().collect();
    let measures: Vec<_> = cols
        .measures
        .iter()
        .map(|m| spade_cube::MeasureSpec { preagg: m, fns: vec![AggFn::Sum, AggFn::Avg] })
        .collect();
    let spec = spade_cube::CubeSpec::new(dims, measures, cols.n_facts);

    println!("Ablation 1: MVDCube partition (chunk) size, {} facts", cols.n_facts);
    println!("{:<16} {:>12} {:>14}", "chunk size", "time ms", "partitions≈");
    spade_bench::rule(46);
    for chunk in [1u32, 2, 4, 8, 16, 32, 101] {
        let opts = MvdCubeOptions { chunk_size: Some(chunk), ..Default::default() };
        let (result, t) = timed(|| mvd_cube(&spec, &opts));
        let parts: u64 =
            spec.domain_sizes().iter().map(|&d| d.div_ceil(chunk.min(d)) as u64).product();
        println!("{:<16} {:>12} {:>14}", chunk, ms(t), parts);
        std::hint::black_box(result.total_groups());
    }
    println!("shape: small chunks pay flush bookkeeping; one partition is fastest when");
    println!("memory allows — the paper partitions to bound memory, not to gain speed.\n");

    // —— 2. cross-lattice sharing on/off (CEOs workload) ——
    let config = experiment_config();
    let mut graph =
        regen_graph("CEOs", &RealisticConfig { scale: args.scale, seed: args.seed });
    let prepared = analyzed_lattices(&mut graph, &config);
    let (with_sharing, t_sharing) = timed(|| {
        prepared
            .iter()
            .map(|(a, l)| evaluate_cfs(a, l, &config).evaluated_aggregates)
            .sum::<usize>()
    });
    let (without_sharing, t_independent) = timed(|| {
        let mut evaluated = 0usize;
        for (analysis, lattices) in &prepared {
            for l in lattices {
                let spec = build_spec(analysis, l, &config);
                let r = mvd_cube(&spec, &MvdCubeOptions::default());
                evaluated += r.aggregate_count();
            }
        }
        evaluated
    });
    println!("Ablation 2: cross-lattice result sharing (CEOs, scale {})", args.scale);
    println!("{:<24} {:>12} {:>12}", "mode", "aggregates", "time ms");
    spade_bench::rule(52);
    println!("{:<24} {:>12} {:>12}", "shared (Spade)", with_sharing, ms(t_sharing));
    println!("{:<24} {:>12} {:>12}", "independent", without_sharing, ms(t_independent));
    println!("shape: sharing strictly reduces evaluated aggregates and time.\n");

    // —— 3. early-stop sample size × batches ——
    println!("Ablation 3: early-stop sample size × batches (synthetic cube, k=10)");
    println!("{:<10} {:>8} {:>12} {:>10}", "sample", "batches", "time ms", "pruned%");
    spade_bench::rule(44);
    let (_, t_plain) = timed(|| mvd_cube(&spec, &MvdCubeOptions::default()));
    println!("{:<10} {:>8} {:>12} {:>10}", "(off)", "-", ms(t_plain), "-");
    for sample in [20usize, 60, 120] {
        for batches in [1usize, 2, 4] {
            let es =
                EarlyStopConfig { k: 10, sample_size: sample, batches, ..Default::default() };
            let ((_, outcome), t) =
                timed(|| mvd_cube_with_earlystop(&spec, &MvdCubeOptions::default(), &es));
            println!(
                "{:<10} {:>8} {:>12} {:>9.1}%",
                sample,
                batches,
                ms(t),
                100.0 * outcome.pruned_fraction()
            );
        }
    }
    println!("shape: the paper's 60×2 sits at the knee — bigger samples sharpen the CIs");
    println!("but cost more sampling than they save.");
}
