//! Shared harness for the experiment binaries (one binary per table/figure
//! of the paper's Section 6) and the Criterion micro-benchmarks.
//!
//! Every binary accepts a `--scale <n>` argument (default [`DEFAULT_SCALE`])
//! controlling the size of the simulated graphs; the paper's absolute sizes
//! are impractical on a laptop, and the *shape* of each result — who wins,
//! by what factor, where the crossovers are — is what the reproduction
//! targets (see `EXPERIMENTS.md`).

use spade_core::{
    analysis::analyze_cfs, cfs, enumeration, offline, CfsAnalysis, LatticeSpec, SpadeConfig,
};
use spade_cube::{CubeResult, CubeSpec, MeasureSpec};
use spade_rdf::Graph;
use std::time::{Duration, Instant};

/// Default `--scale` for the simulated graphs.
pub const DEFAULT_SCALE: usize = 400;

/// Parses the shared `--scale <n>` / `--seed <n>` / `--threads <n[,m,…]>` /
/// `--out <path>` CLI arguments every experiment binary accepts.
pub struct HarnessArgs {
    /// Graph scale (primary fact count of the smallest dataset).
    pub scale: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for parallel pipeline stages (`0` = all cores). When
    /// `--threads` was given a comma-separated list, this is its first
    /// entry; sweep-capable benches read the full list via
    /// [`HarnessArgs::thread_sweep`].
    pub threads: usize,
    /// The full `--threads` list (e.g. `--threads 1,2,8`); empty when the
    /// flag was not given.
    pub threads_list: Vec<usize>,
    /// Output path override for benches that write a JSON artifact.
    pub out: Option<String>,
    /// Free-standing (non-flag) arguments.
    pub rest: Vec<String>,
    scale_is_explicit: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (exposed for tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = DEFAULT_SCALE;
        let mut scale_is_explicit = false;
        let mut threads = 0usize;
        let mut threads_list: Vec<usize> = Vec::new();
        let mut seed = 7u64;
        let mut out = None;
        let mut rest = Vec::new();
        let mut args = args.into_iter();
        let int = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs an integer"))
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    scale = int(&mut args, "--scale");
                    scale_is_explicit = true;
                }
                "--seed" => seed = int(&mut args, "--seed") as u64,
                "--threads" => {
                    let v = args.next().expect("--threads needs an integer or list");
                    threads_list = v
                        .split(',')
                        .map(|t| {
                            t.trim().parse().unwrap_or_else(|_| {
                                panic!("--threads needs integers, got {t:?}")
                            })
                        })
                        .collect();
                    threads = *threads_list.first().expect("--threads needs a value");
                }
                "--out" => out = Some(args.next().expect("--out needs a path")),
                other => rest.push(other.to_owned()),
            }
        }
        HarnessArgs { scale, seed, threads, threads_list, out, rest, scale_is_explicit }
    }

    /// The thread counts a sweep-capable bench measures: the explicit
    /// `--threads` list when given, else `default`.
    pub fn thread_sweep(&self, default: &[usize]) -> Vec<usize> {
        if self.threads_list.is_empty() {
            default.to_vec()
        } else {
            self.threads_list.clone()
        }
    }

    /// The scale to use for a bench whose default differs from
    /// [`DEFAULT_SCALE`]: an explicit `--scale` always wins; otherwise
    /// `default`.
    pub fn scale_or(&self, default: usize) -> usize {
        if self.scale_is_explicit {
            self.scale
        } else {
            default
        }
    }

    /// The artifact path: `--out` if given, else `default`.
    pub fn out_path(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_owned())
    }
}

/// Geometric mean of per-case speedups — the headline number every bench
/// artifact reports.
pub fn geo_mean(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 1.0;
    }
    (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
}

/// The pipeline configuration all experiments share (matches the paper's
/// operating point: variance, derivations on, N ≤ 3).
pub fn experiment_config() -> SpadeConfig {
    SpadeConfig { min_support: 0.3, min_cfs_size: 20, max_cfs: 12, ..Default::default() }
}

/// Runs pipeline Steps 1–3 (CFS selection, online analysis, enumeration),
/// returning the analyzed CFSs with their lattices — the input Experiments
/// 2–4 feed to the competing evaluation modules.
pub fn analyzed_lattices(
    graph: &mut Graph,
    config: &SpadeConfig,
) -> Vec<(CfsAnalysis, Vec<LatticeSpec>)> {
    spade_rdf::saturate(graph);
    let stats = offline::analyze(graph);
    let (derived, _) = offline::enumerate_derivations(graph, &stats, config);
    let cfs_list = cfs::select(
        graph,
        &[cfs::CfsStrategy::TypeBased, cfs::CfsStrategy::SummaryBased],
        config,
    );
    cfs_list
        .iter()
        .map(|c| {
            let analysis = analyze_cfs(graph, c, &derived, config);
            let lattices = enumeration::enumerate(&analysis, config);
            (analysis, lattices)
        })
        .collect()
}

/// Builds the cube spec of one lattice.
pub fn build_spec<'a>(
    analysis: &'a CfsAnalysis,
    lattice: &LatticeSpec,
    config: &SpadeConfig,
) -> CubeSpec<'a> {
    let dims = lattice
        .dims
        .iter()
        .map(|&d| analysis.attributes[d].categorical.as_ref().expect("dimension column"))
        .collect();
    let measures = lattice
        .measures
        .iter()
        .map(|&m| MeasureSpec {
            preagg: analysis.attributes[m].numeric.as_ref().expect("measure column"),
            fns: config.agg_fns.clone(),
        })
        .collect();
    CubeSpec::new(dims, measures, analysis.n_facts())
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Evaluates every lattice of every CFS with MVDCube; returns results and
/// total wall time.
pub fn evaluate_all_mvd(
    prepared: &[(CfsAnalysis, Vec<LatticeSpec>)],
    config: &SpadeConfig,
) -> (Vec<CubeResult>, Duration) {
    timed(|| {
        let mut out = Vec::new();
        for (analysis, lattices) in prepared {
            for l in lattices {
                let spec = build_spec(analysis, l, config);
                out.push(spade_cube::mvd_cube(&spec, &Default::default()));
            }
        }
        out
    })
}

/// Same lattices through PGCube (per-lattice flatten + rollup chains).
pub fn evaluate_all_pgcube(
    prepared: &[(CfsAnalysis, Vec<LatticeSpec>)],
    config: &SpadeConfig,
    variant: spade_cube::PgCubeVariant,
) -> (Vec<CubeResult>, Duration) {
    timed(|| {
        let mut out = Vec::new();
        for (analysis, lattices) in prepared {
            for l in lattices {
                let spec = build_spec(analysis, l, config);
                out.push(spade_cube::pg_cube(&spec, variant, &Default::default()));
            }
        }
        out
    })
}

/// Same lattices through MVDCube with early-stop; returns results, the
/// number pruned, the total aggregates, and wall time.
pub fn evaluate_all_mvd_es(
    prepared: &[(CfsAnalysis, Vec<LatticeSpec>)],
    config: &SpadeConfig,
    es: &spade_cube::EarlyStopConfig,
) -> (Vec<CubeResult>, usize, usize, Duration) {
    let t = Instant::now();
    let mut out = Vec::new();
    let mut pruned = 0usize;
    let mut total = 0usize;
    for (analysis, lattices) in prepared {
        for l in lattices {
            let spec = build_spec(analysis, l, config);
            let (result, outcome) =
                spade_cube::mvd_cube_with_earlystop(&spec, &Default::default(), es);
            pruned += outcome.pruned;
            total += outcome.total;
            out.push(result);
        }
    }
    (out, pruned, total, t.elapsed())
}

/// Top-k accuracy `|T_w/o ∩ T_w| / |T_w/o|` over aggregate identities
/// (Section 6.4's metric).
pub fn topk_accuracy(
    full: &[CubeResult],
    es: &[CubeResult],
    h: spade_stats::Interestingness,
    k: usize,
) -> f64 {
    let ids = |results: &[CubeResult]| -> Vec<(usize, u32, usize)> {
        let mut scored: Vec<(f64, (usize, u32, usize))> = Vec::new();
        for (li, r) in results.iter().enumerate() {
            for s in spade_cube::arm::top_k_of_result(r, h, usize::MAX) {
                scored.push((s.score, (li, s.id.node_mask, s.id.mda)));
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, id)| id).collect()
    };
    let t_full = ids(full);
    let t_es: std::collections::HashSet<_> = ids(es).into_iter().collect();
    if t_full.is_empty() {
        return 1.0;
    }
    t_full.iter().filter(|id| t_es.contains(id)).count() as f64 / t_full.len() as f64
}

/// Formats a duration in ms with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Regenerates one of the six simulated graphs by name, with the relative
/// sizing of `realistic::all` (Airline ×8, DBLP ×4, Foodista ×2).
pub fn regen_graph(name: &str, cfg: &spade_datagen::RealisticConfig) -> Graph {
    use spade_datagen::realistic;
    match name {
        "Airline" => {
            realistic::airline(&spade_datagen::RealisticConfig { scale: cfg.scale * 8, ..*cfg })
        }
        "CEOs" => realistic::ceos(cfg),
        "DBLP" => {
            realistic::dblp(&spade_datagen::RealisticConfig { scale: cfg.scale * 4, ..*cfg })
        }
        "Foodista" => realistic::foodista(&spade_datagen::RealisticConfig {
            scale: cfg.scale * 2,
            ..*cfg
        }),
        "NASA" => realistic::nasa(cfg),
        "Nobel" => realistic::nobel(cfg),
        other => panic!("unknown dataset {other}"),
    }
}

/// The Experiment 2/3 measurement for one dataset: MVDCube vs PGCube\* vs
/// PGCube^d run times and per-system error reports against MVDCube.
pub struct SystemComparison {
    /// Dataset name.
    pub name: &'static str,
    /// Aggregates evaluated per system.
    pub aggregates: usize,
    /// MVDCube wall time.
    pub mvd: Duration,
    /// PGCube\* wall time.
    pub star: Duration,
    /// PGCube^d wall time.
    pub distinct: Duration,
    /// Errors of PGCube\* vs the correct results.
    pub star_report: spade_cube::ComparisonReport,
    /// Errors of PGCube^d vs the correct results.
    pub distinct_report: spade_cube::ComparisonReport,
}

/// Runs Experiment 2/3 on one named dataset (derivations on, ES off).
pub fn compare_systems(
    name: &'static str,
    graph: &mut Graph,
    config: &SpadeConfig,
) -> SystemComparison {
    let prepared = analyzed_lattices(graph, config);
    let (mvd_results, mvd) = evaluate_all_mvd(&prepared, config);
    let (star_results, star) =
        evaluate_all_pgcube(&prepared, config, spade_cube::PgCubeVariant::Star);
    let (distinct_results, distinct) =
        evaluate_all_pgcube(&prepared, config, spade_cube::PgCubeVariant::Distinct);

    let mut star_report = spade_cube::ComparisonReport::default();
    let mut distinct_report = spade_cube::ComparisonReport::default();
    for ((correct, s), d) in mvd_results.iter().zip(&star_results).zip(&distinct_results) {
        star_report.merge(&spade_cube::compare_results(correct, s, 1e-9));
        distinct_report.merge(&spade_cube::compare_results(correct, d, 1e-9));
    }
    SystemComparison {
        name,
        aggregates: star_report.total_aggregates,
        mvd,
        star,
        distinct,
        star_report,
        distinct_report,
    }
}

/// Prints a horizontal rule sized to a header.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_datagen::{realistic, RealisticConfig};

    #[test]
    fn harness_args_parse_shared_flags() {
        fn to_args(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(str::to_owned)
        }
        let args = HarnessArgs::parse_from(to_args(
            "--scale 123 --seed 9 --threads 4 --out custom.json extra",
        ));
        assert_eq!(args.scale, 123);
        assert_eq!(args.scale_or(999), 123, "explicit --scale wins");
        assert_eq!(args.seed, 9);
        assert_eq!(args.threads, 4);
        assert_eq!(args.threads_list, vec![4]);
        assert_eq!(args.thread_sweep(&[1, 2]), vec![4], "explicit --threads wins");
        assert_eq!(args.out_path("default.json"), "custom.json");
        assert_eq!(args.rest, vec!["extra".to_owned()]);

        let defaults = HarnessArgs::parse_from(to_args(""));
        assert_eq!(defaults.scale, DEFAULT_SCALE);
        assert_eq!(defaults.scale_or(999), 999, "bench default applies");
        assert_eq!(defaults.threads, 0);
        assert!(defaults.threads_list.is_empty());
        assert_eq!(defaults.thread_sweep(&[1, 2, 8]), vec![1, 2, 8]);
        assert_eq!(defaults.out_path("default.json"), "default.json");

        let sweep = HarnessArgs::parse_from(to_args("--threads 1,2,8"));
        assert_eq!(sweep.threads, 1, "first sweep entry is the scalar value");
        assert_eq!(sweep.threads_list, vec![1, 2, 8]);
        assert_eq!(sweep.thread_sweep(&[4]), vec![1, 2, 8]);
    }

    #[test]
    fn geo_mean_of_speedups() {
        assert_eq!(geo_mean(&[]), 1.0);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn harness_pipeline_produces_lattices() {
        let mut g = realistic::ceos(&RealisticConfig { scale: 150, seed: 5 });
        let config = experiment_config();
        let prepared = analyzed_lattices(&mut g, &config);
        assert!(!prepared.is_empty());
        let total_lattices: usize = prepared.iter().map(|(_, l)| l.len()).sum();
        assert!(total_lattices > 0);
        let (results, d) = evaluate_all_mvd(&prepared, &config);
        assert_eq!(results.len(), total_lattices);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn accuracy_of_identical_runs_is_one() {
        let mut g = realistic::nasa(&RealisticConfig { scale: 120, seed: 5 });
        let config = experiment_config();
        let prepared = analyzed_lattices(&mut g, &config);
        let (a, _) = evaluate_all_mvd(&prepared, &config);
        let (b, _) = evaluate_all_mvd(&prepared, &config);
        let acc = topk_accuracy(&a, &b, spade_stats::Interestingness::Variance, 5);
        assert_eq!(acc, 1.0);
    }
}
