//! The shared one-pass lattice evaluation engine.
//!
//! MVDCube and the classical ArrayCube baseline differ only in what a cube
//! cell *holds* and how parent cells combine into child cells:
//!
//! * MVDCube cells hold **fact sets** (Roaring bitmaps); combination is set
//!   union, which consolidates a multi-valued fact that occupies several
//!   parent cells into one child membership (the correctness fix);
//! * ArrayCube cells hold **partial aggregates**; combination is algebraic
//!   addition, which double-counts exactly as Lemma 1 describes.
//!
//! Everything else — partition iteration, MMST propagation, the
//! write-to-disk check — is the same machinery, captured by [`CubeAlgebra`]
//! and [`run_engine`].
//!
//! The ArrayCube flush check ("once a partition is evaluated, each node
//! checks if it is time to store its memory content to disk", Section 4.1)
//! is implemented with per-region partition counters: an MMST node's memory
//! region — the projection of partition coordinates onto its dimensions —
//! can be flushed when every base partition mapping to it has been
//! processed. This is equivalent to the subarray-exhaustion check and
//! independent of partition iteration order.

use crate::lattice::Lattice;
use crate::result::{CubeResult, NodeResult};
use crate::spec::CubeSpec;
use crate::translate::{strides_for, Translation};
use spade_bitmap::Bitmap;
use std::collections::HashMap;

/// What a cube cell holds and how cells combine — the algorithm-specific
/// part of lattice evaluation.
pub(crate) trait CubeAlgebra {
    /// Cell payload.
    type Cell: Clone;

    /// Builds a root cell from the facts of one array cell.
    fn root_cell(&self, facts: &Bitmap) -> Self::Cell;

    /// Combines a parent's cell into a child's cell (projection step).
    fn merge(&self, into: &mut Self::Cell, from: &Self::Cell);

    /// Computes the per-MDA values of a finished cell. `alive[i] == false`
    /// means MDA `i` was pruned by early-stop and must not be computed.
    fn emit(&self, cell: &Self::Cell, alive: &[bool]) -> Vec<Option<f64>>;
}

/// Per-node geometry: dims, their domains, cell strides, chunk geometry.
struct NodeGeom {
    dims: Vec<usize>,
    /// Domain size of each of the node's dims.
    domains: Vec<u64>,
    /// Row-major strides over the node's own cell space.
    strides: Vec<u64>,
    /// Row-major strides over the node's own region (chunk) space.
    region_strides: Vec<u64>,
}

impl NodeGeom {
    /// Decodes a node cell index into its per-dim value codes (group key).
    /// The internal null slot (last code of each domain) is remapped to
    /// [`crate::result::NULL_CODE`].
    fn decode(&self, cell_idx: u64) -> Vec<u32> {
        self.strides
            .iter()
            .zip(&self.domains)
            .map(|(&s, &d)| {
                let code = (cell_idx / s) % d;
                if code == d - 1 {
                    crate::result::NULL_CODE
                } else {
                    code as u32
                }
            })
            .collect()
    }
}

/// Precomputed projection from a parent node to a child node (one dropped
/// dimension): `child = (idx / (d·below)) · below + idx mod below`.
struct Projection {
    child_mask: u32,
    cell_d: u64,
    cell_below: u64,
    region_d: u64,
    region_below: u64,
}

fn node_geom(lattice: &Lattice, mask: u32) -> NodeGeom {
    let dims = lattice.dims_of(mask);
    let domains32: Vec<u32> = dims.iter().map(|&i| lattice.domains[i]).collect();
    let n_chunks_all = lattice.n_chunks();
    let chunks: Vec<u32> = dims.iter().map(|&i| n_chunks_all[i]).collect();
    NodeGeom {
        strides: strides_for(&domains32),
        domains: domains32.iter().map(|&d| d as u64).collect(),
        region_strides: strides_for(&chunks),
        dims,
    }
}

#[inline]
fn project(idx: u64, d: u64, below: u64) -> u64 {
    (idx / (d * below)) * below + idx % below
}

/// Engine state during one evaluation.
struct Engine<'a, A: CubeAlgebra> {
    algebra: &'a A,
    geoms: HashMap<u32, NodeGeom>,
    projections: HashMap<u32, Vec<Projection>>,
    /// node → region → cell → payload.
    memory: HashMap<u32, HashMap<u64, HashMap<u64, A::Cell>>>,
    /// node → region → remaining base partitions before flush.
    pending: HashMap<u32, HashMap<u64, u64>>,
    /// node → region → number of *non-empty* base partitions mapping to it.
    /// Initializes pending counters and sizes the decrement a parent flush
    /// applies to its children (empty partitions never arrive, so the count
    /// is over partitions that actually exist in the translation).
    region_totals: HashMap<u32, HashMap<u64, u64>>,
    /// node → per-MDA alive flags.
    alive: HashMap<u32, Vec<bool>>,
    /// node → whether it or any MMST descendant still emits.
    keep: HashMap<u32, bool>,
    result: CubeResult,
}

impl<'a, A: CubeAlgebra> Engine<'a, A> {
    /// Emits the finished cells of `mask`'s `region` and propagates them to
    /// the node's MMST children, recursively flushing children that
    /// complete — Algorithm 1's `updateSubtree` +
    /// `computeAndStoreAggregatedMeasures` + `emptyMemory`.
    fn flush(&mut self, mask: u32, region: u64, cells: HashMap<u64, A::Cell>) {
        // 1. Measure computation for this node (if it still has alive MDAs).
        if self.alive[&mask].iter().any(|&a| a) {
            let geom = &self.geoms[&mask];
            let mut emitted: Vec<(Vec<u32>, Vec<Option<f64>>)> = Vec::with_capacity(cells.len());
            for (&cell_idx, cell) in &cells {
                let key = geom.decode(cell_idx);
                let values = self.algebra.emit(cell, &self.alive[&mask]);
                emitted.push((key, values));
            }
            let node =
                self.result.nodes.entry(mask).or_insert_with(|| NodeResult::new(mask));
            for (key, values) in emitted {
                node.groups.insert(key, values);
            }
        }

        // 2. Propagate to MMST children.
        let coverage = self.region_totals[&mask][&region];
        let n_projs = self.projections.get(&mask).map_or(0, Vec::len);
        for pi in 0..n_projs {
            let (child, cell_d, cell_below, region_d, region_below) = {
                let p = &self.projections[&mask][pi];
                (p.child_mask, p.cell_d, p.cell_below, p.region_d, p.region_below)
            };
            if !self.keep[&child] {
                continue;
            }
            let child_region = project(region, region_d, region_below);
            let child_mem =
                self.memory.get_mut(&child).unwrap().entry(child_region).or_default();
            for (&cell_idx, cell) in &cells {
                let child_idx = project(cell_idx, cell_d, cell_below);
                match child_mem.get_mut(&child_idx) {
                    Some(existing) => self.algebra.merge(existing, cell),
                    None => {
                        child_mem.insert(child_idx, cell.clone());
                    }
                }
            }
            // Flush check (timeToStoreToDisk): every base partition of the
            // child's region processed?
            let total = self.region_totals[&child][&child_region];
            let pending =
                self.pending.get_mut(&child).unwrap().entry(child_region).or_insert(total);
            *pending = pending.saturating_sub(coverage);
            if *pending == 0 {
                self.pending.get_mut(&child).unwrap().remove(&child_region);
                let child_cells = self
                    .memory
                    .get_mut(&child)
                    .unwrap()
                    .remove(&child_region)
                    .unwrap_or_default();
                self.flush(child, child_region, child_cells);
            }
        }
    }
}

/// Runs the shared engine over a translation.
///
/// `alive` gives per-node MDA liveness (from early-stop); pass `None` to
/// evaluate everything.
pub(crate) fn run_engine<A: CubeAlgebra>(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    translation: &Translation,
    algebra: &A,
    alive: Option<&HashMap<u32, Vec<bool>>>,
) -> CubeResult {
    let mmst = lattice.mmst();
    let n_mdas = spec.mdas().len();
    let labels = spec.mdas().into_iter().map(|m| m.label).collect();

    let mut geoms = HashMap::new();
    for mask in lattice.nodes() {
        geoms.insert(mask, node_geom(lattice, mask));
    }
    let n_chunks = lattice.n_chunks();
    let mut projections: HashMap<u32, Vec<Projection>> = HashMap::new();
    for mask in lattice.nodes() {
        let parent_dims = &geoms[&mask].dims;
        let projs: Vec<Projection> = mmst
            .children_of(mask)
            .iter()
            .map(|&child| {
                let dropped = mmst.parent[&child].1;
                let pos = parent_dims.iter().position(|&d| d == dropped).unwrap();
                let cell_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| lattice.domains[i] as u64).product();
                let region_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| n_chunks[i] as u64).product();
                Projection {
                    child_mask: child,
                    cell_d: lattice.domains[dropped] as u64,
                    cell_below,
                    region_d: n_chunks[dropped] as u64,
                    region_below,
                }
            })
            .collect();
        if !projs.is_empty() {
            projections.insert(mask, projs);
        }
    }

    // Liveness: default everything alive; keep = self or descendant alive.
    let alive_map: HashMap<u32, Vec<bool>> = lattice
        .nodes()
        .iter()
        .map(|&m| {
            let flags = alive
                .and_then(|a| a.get(&m).cloned())
                .unwrap_or_else(|| vec![true; n_mdas]);
            assert_eq!(flags.len(), n_mdas);
            (m, flags)
        })
        .collect();
    let mut keep: HashMap<u32, bool> = HashMap::new();
    for &mask in mmst.topological().iter().rev() {
        let self_alive = alive_map[&mask].iter().any(|&a| a);
        let child_alive = mmst.children_of(mask).iter().any(|c| keep[c]);
        keep.insert(mask, self_alive || child_alive);
    }

    let root = lattice.root_mask();
    let region_strides = strides_for(&n_chunks);
    // Count, per node region, how many non-empty partitions map to it.
    let mut region_totals: HashMap<u32, HashMap<u64, u64>> =
        lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect();
    for partition in &translation.partitions {
        for mask in lattice.nodes() {
            let geom = &geoms[&mask];
            let region: u64 = geom
                .dims
                .iter()
                .zip(&geom.region_strides)
                .map(|(&d, &s)| partition.coords[d] as u64 * s)
                .sum();
            *region_totals.get_mut(&mask).unwrap().entry(region).or_insert(0) += 1;
        }
    }
    let mut engine = Engine {
        algebra,
        memory: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        pending: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        geoms,
        projections,
        alive: alive_map,
        keep,
        region_totals,
        result: CubeResult::new(labels),
    };
    if !engine.keep[&root] {
        return engine.result;
    }
    for partition in &translation.partitions {
        // Load the partition into the root (Algorithm 1, line 3). Root cells
        // are complete after their own partition, so the root flushes —
        // and thereby updates its subtree — immediately (lines 4–5).
        let cells: HashMap<u64, A::Cell> = partition
            .cells
            .iter()
            .map(|(idx, facts)| (*idx, algebra.root_cell(facts)))
            .collect();
        let region: u64 = partition
            .coords
            .iter()
            .zip(&region_strides)
            .map(|(&c, &s)| c as u64 * s)
            .sum();
        engine.flush(root, region, cells);
    }
    engine.result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_removes_first_axis() {
        // Space [4,2] (strides [2,1]); dropping axis 0: d=4, below=2 →
        // child = idx mod 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 4, 2), idx % 2);
        }
    }

    #[test]
    fn project_removes_last_axis() {
        // Dropping axis 1 of [4,2]: d=2, below=1 → child = idx / 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 2, 1), idx / 2);
        }
    }

    #[test]
    fn project_removes_middle_axis() {
        // Space [3,4,5], strides [20,5,1]. Drop middle axis (d=4, below=5):
        // child space [3,5], child = a*5 + c.
        for a in 0..3u64 {
            for b in 0..4u64 {
                for c in 0..5u64 {
                    let idx = a * 20 + b * 5 + c;
                    assert_eq!(project(idx, 4, 5), a * 5 + c);
                }
            }
        }
    }

    #[test]
    fn decode_roundtrips_and_marks_nulls() {
        let geom = NodeGeom {
            dims: vec![0, 2],
            domains: vec![4, 5],
            strides: vec![5, 1],
            region_strides: vec![1, 1],
        };
        for a in 0..4u64 {
            for b in 0..5u64 {
                let expect = |c: u64, d: u64| {
                    if c == d - 1 {
                        crate::result::NULL_CODE
                    } else {
                        c as u32
                    }
                };
                assert_eq!(geom.decode(a * 5 + b), vec![expect(a, 4), expect(b, 5)]);
            }
        }
    }
}
