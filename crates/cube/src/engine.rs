//! The shared one-pass lattice evaluation engine.
//!
//! MVDCube and the classical ArrayCube baseline differ only in what a cube
//! cell *holds* and how parent cells combine into child cells:
//!
//! * MVDCube cells hold **fact sets** (Roaring bitmaps); combination is set
//!   union, which consolidates a multi-valued fact that occupies several
//!   parent cells into one child membership (the correctness fix);
//! * ArrayCube cells hold **partial aggregates**; combination is algebraic
//!   addition, which double-counts exactly as Lemma 1 describes.
//!
//! Everything else — partition iteration, MMST propagation, the
//! write-to-disk check — is the same machinery, captured by [`CubeAlgebra`]
//! and [`run_engine`].
//!
//! ## Memory layout (performance architecture)
//!
//! Cube memory is organised per *(node, region)*, where an MMST node's
//! memory region is the projection of partition coordinates onto its
//! dimensions. Within a region, cells are addressed by a **local index**
//! over the region's chunk extents (row-major, like the global index but
//! with per-dimension extent `c_i` instead of `|D_i|`), and stored flat:
//!
//! * **dense** — `Vec<Option<Cell>>` of the region's full capacity
//!   `Π c_i`, used when that capacity is at most
//!   [`DENSE_CAPACITY_LIMIT`] (the precomputed density threshold in
//!   [`NodeGeom`]): cell lookup is one array index, no hashing;
//! * **sparse** — a `Vec<(u64, Cell)>` sorted by local index, used for
//!   large cell spaces: batches of projected parent cells are stable-sorted
//!   and merged in one pass.
//!
//! Parent cells are *moved* (not cloned) into the last surviving MMST
//! child, and the group-key decode reuses one scratch buffer per flush
//! instead of allocating per cell. Projection arithmetic happens entirely
//! in local coordinates: dropping dimension `j` of the parent's local space
//! is the same row-major index surgery as in the global space, with chunk
//! extents. The flush check ("once a partition is evaluated, each node
//! checks if it is time to store its memory content to disk", Section 4.1)
//! is unchanged: per-region partition counters over the non-empty base
//! partitions mapping to the region.
//!
//! The pre-optimization engine is preserved in [`crate::engine_baseline`]
//! for benchmarking and as a property-test reference.

use crate::lattice::Lattice;
use crate::result::{CubeResult, NodeResult};
use crate::spec::CubeSpec;
use crate::translate::{strides_for, Translation};
use spade_bitmap::Bitmap;
use std::collections::HashMap;

/// Cell capacity up to which a region uses dense storage under
/// [`CellStorePolicy::Auto`]. 2^16 cells keeps a dense region under a few
/// megabytes for every cell payload the engine stores while covering all
/// practically chunked lattices (chunk extents are small by construction).
pub const DENSE_CAPACITY_LIMIT: u64 = 1 << 16;

/// Hard ceiling for [`CellStorePolicy::ForceDense`]; beyond this the engine
/// falls back to sparse storage rather than risk an enormous allocation.
const FORCE_DENSE_CEILING: u64 = 1 << 26;

/// How per-region cell storage is chosen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellStorePolicy {
    /// Dense when the region capacity is at most [`DENSE_CAPACITY_LIMIT`],
    /// sparse otherwise (the precomputed density threshold).
    #[default]
    Auto,
    /// Dense wherever feasible (capacity-capped); for tests/benchmarks.
    ForceDense,
    /// Always sparse; for tests/benchmarks.
    ForceSparse,
}

/// What a cube cell holds and how cells combine — the algorithm-specific
/// part of lattice evaluation.
pub(crate) trait CubeAlgebra {
    /// Cell payload.
    type Cell: Clone;

    /// Per-node precomputed emit state (e.g. which measures are needed),
    /// hoisted out of the per-cell hot path.
    type EmitPlan;

    /// Reusable per-evaluation scratch buffers for `emit` (e.g. the decoded
    /// fact list), so the hot path allocates nothing per cell.
    type EmitScratch: Default;

    /// Builds a root cell from the facts of one array cell.
    fn root_cell(&self, facts: &Bitmap) -> Self::Cell;

    /// Combines a parent's cell into a child's cell (projection step).
    fn merge(&self, into: &mut Self::Cell, from: &Self::Cell);

    /// Combines a *run* of cells into one (the fan-in path: every parent
    /// cell projecting onto the same child cell, batched by the engine's
    /// sorted storage). Defaults to folding [`CubeAlgebra::merge`] in
    /// order; algebras with an associative combine can override with a
    /// one-pass k-way merge.
    fn merge_run(&self, into: &mut Self::Cell, from: &[&Self::Cell]) {
        for f in from {
            self.merge(into, f);
        }
    }

    /// Prepares per-node emit state from the node's MDA liveness.
    fn plan_emit(&self, alive: &[bool]) -> Self::EmitPlan;

    /// Computes the per-MDA values of a finished cell. `alive[i] == false`
    /// means MDA `i` was pruned by early-stop and must not be computed.
    fn emit(
        &self,
        cell: &Self::Cell,
        alive: &[bool],
        plan: &Self::EmitPlan,
        scratch: &mut Self::EmitScratch,
    ) -> Vec<Option<f64>>;
}

/// Per-node geometry: dims, domain/chunk extents, local strides, and the
/// precomputed storage decision.
pub(crate) struct NodeGeom {
    dims: Vec<usize>,
    /// Domain size of each of the node's dims (incl. the null slot).
    domains: Vec<u64>,
    /// Row-major strides over the node's *global* cell space (root load).
    global_strides: Vec<u64>,
    /// Chunk extent of each of the node's dims.
    chunk: Vec<u64>,
    /// Chunk count of each of the node's dims.
    n_chunks: Vec<u64>,
    /// Row-major strides over the node's local (within-region) cell space.
    local_strides: Vec<u64>,
    /// Row-major strides over the node's region (chunk) space.
    region_strides: Vec<u64>,
    /// Cells per region: `Π chunk`.
    capacity: u64,
    /// The precomputed density decision: dense flat array vs sorted sparse.
    dense: bool,
}

impl NodeGeom {
    /// Converts a global cell index of this node to its local index inside
    /// the (unique) region containing it.
    #[inline]
    fn global_to_local(&self, global: u64) -> u64 {
        let mut local = 0u64;
        for k in 0..self.dims.len() {
            let code = (global / self.global_strides[k]) % self.domains[k];
            local += (code % self.chunk[k]) * self.local_strides[k];
        }
        local
    }

    /// Decodes a `(region, local cell)` pair into per-dim value codes,
    /// writing into `out` (cleared first) to avoid per-cell allocation.
    /// The internal null slot (last code of each domain) is remapped to
    /// [`crate::result::NULL_CODE`].
    fn decode_into(&self, region: u64, local: u64, out: &mut Vec<u32>) {
        out.clear();
        for k in 0..self.dims.len() {
            let coord = (region / self.region_strides[k]) % self.n_chunks[k];
            let code = coord * self.chunk[k] + (local / self.local_strides[k]) % self.chunk[k];
            out.push(if code == self.domains[k] - 1 {
                crate::result::NULL_CODE
            } else {
                code as u32
            });
        }
    }
}

/// Precomputed projection from a parent node to a child node (one dropped
/// dimension): `child = (idx / (d·below)) · below + idx mod below`, applied
/// in *local* (within-region) coordinates for cells and in chunk
/// coordinates for regions.
struct Projection {
    child_mask: u32,
    /// Chunk extent of the dropped dimension (parent local space).
    local_d: u64,
    /// Product of parent chunk extents after the dropped position.
    local_below: u64,
    region_d: u64,
    region_below: u64,
}

fn node_geom(lattice: &Lattice, mask: u32, policy: CellStorePolicy) -> NodeGeom {
    let dims = lattice.dims_of(mask);
    let domains32: Vec<u32> = dims.iter().map(|&i| lattice.domains[i]).collect();
    let chunk32: Vec<u32> = dims.iter().map(|&i| lattice.chunks[i]).collect();
    let n_chunks_all = lattice.n_chunks();
    let chunks32: Vec<u32> = dims.iter().map(|&i| n_chunks_all[i]).collect();
    let capacity = chunk32
        .iter()
        .map(|&c| c as u64)
        .try_fold(1u64, u64::checked_mul)
        .expect("region capacity overflows u64");
    let dense = match policy {
        CellStorePolicy::Auto => capacity <= DENSE_CAPACITY_LIMIT,
        CellStorePolicy::ForceDense => capacity <= FORCE_DENSE_CEILING,
        CellStorePolicy::ForceSparse => false,
    };
    NodeGeom {
        global_strides: strides_for(&domains32),
        domains: domains32.iter().map(|&d| d as u64).collect(),
        local_strides: strides_for(&chunk32),
        chunk: chunk32.iter().map(|&c| c as u64).collect(),
        n_chunks: chunks32.iter().map(|&c| c as u64).collect(),
        region_strides: strides_for(&chunks32),
        capacity,
        dense,
        dims,
    }
}

#[inline]
fn project(idx: u64, d: u64, below: u64) -> u64 {
    (idx / (d * below)) * below + idx % below
}

/// Flat cell storage of one (node, region): dense array or sorted sparse
/// pairs, keyed by local cell index.
enum RegionStore<C> {
    Dense(Vec<Option<C>>),
    Sparse(Vec<(u64, C)>),
}

impl<C> RegionStore<C> {
    fn new(geom: &NodeGeom) -> Self {
        if geom.dense {
            let mut slots = Vec::new();
            slots.resize_with(geom.capacity as usize, || None);
            RegionStore::Dense(slots)
        } else {
            RegionStore::Sparse(Vec::new())
        }
    }

    /// Inserts a cell at a key known to be absent, arriving in ascending
    /// key order (the root-load path).
    fn push_sorted(&mut self, local: u64, cell: C) {
        match self {
            RegionStore::Dense(slots) => {
                debug_assert!(slots[local as usize].is_none());
                slots[local as usize] = Some(cell);
            }
            RegionStore::Sparse(v) => {
                debug_assert!(v.last().is_none_or(|(k, _)| *k < local));
                v.push((local, cell));
            }
        }
    }

    /// Visits occupied cells in ascending local-index order.
    fn for_each(&self, mut f: impl FnMut(u64, &C)) {
        match self {
            RegionStore::Dense(slots) => {
                for (i, slot) in slots.iter().enumerate() {
                    if let Some(c) = slot {
                        f(i as u64, c);
                    }
                }
            }
            RegionStore::Sparse(v) => {
                for (k, c) in v {
                    f(*k, c);
                }
            }
        }
    }

    /// Visits occupied cells in ascending local-index order, by reference.
    fn iter_cells(&self) -> Box<dyn Iterator<Item = (u64, &C)> + '_> {
        match self {
            RegionStore::Dense(slots) => Box::new(
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| slot.as_ref().map(|c| (i as u64, c))),
            ),
            RegionStore::Sparse(v) => Box::new(v.iter().map(|(k, c)| (*k, c))),
        }
    }

    /// Consumes the store, yielding occupied cells in ascending order.
    fn into_cells(self) -> Vec<(u64, C)> {
        match self {
            RegionStore::Dense(slots) => slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.map(|c| (i as u64, c)))
                .collect(),
            RegionStore::Sparse(v) => v,
        }
    }
}

/// A projected cell on its way into a child store: owned (moved out of the
/// parent, for the last MMST child) or borrowed (cloned only if it ends up
/// *placed* — cells that merge into existing/preceding cells are read by
/// reference and never copied).
enum ProjectedCell<'c, C> {
    Owned(C),
    Borrowed(&'c C),
}

impl<'c, C: Clone> ProjectedCell<'c, C> {
    #[inline]
    fn get(&self) -> &C {
        match self {
            ProjectedCell::Owned(c) => c,
            ProjectedCell::Borrowed(r) => r,
        }
    }

    #[inline]
    fn into_owned(self) -> C {
        match self {
            ProjectedCell::Owned(c) => c,
            ProjectedCell::Borrowed(r) => r.clone(),
        }
    }
}

/// Engine state during one evaluation.
struct Engine<'a, A: CubeAlgebra> {
    algebra: &'a A,
    geoms: HashMap<u32, NodeGeom>,
    projections: HashMap<u32, Vec<Projection>>,
    /// node → region → flat cell storage.
    memory: HashMap<u32, HashMap<u64, RegionStore<A::Cell>>>,
    /// node → region → remaining base partitions before flush.
    pending: HashMap<u32, HashMap<u64, u64>>,
    /// node → region → number of *non-empty* base partitions mapping to it.
    /// Initializes pending counters and sizes the decrement a parent flush
    /// applies to its children (empty partitions never arrive, so the count
    /// is over partitions that actually exist in the translation).
    region_totals: HashMap<u32, HashMap<u64, u64>>,
    /// node → per-MDA alive flags.
    alive: HashMap<u32, Vec<bool>>,
    /// node → precomputed emit plan (needed measures etc.).
    plans: HashMap<u32, A::EmitPlan>,
    /// node → whether it or any MMST descendant still emits.
    keep: HashMap<u32, bool>,
    /// Scratch buffer for group-key decoding (reused across all cells).
    key_buf: Vec<u32>,
    /// Algebra-defined emit scratch (reused across all cells).
    emit_scratch: A::EmitScratch,
    result: CubeResult,
}

impl<'a, A: CubeAlgebra> Engine<'a, A> {
    /// Emits the finished cells of `mask`'s `region` and propagates them to
    /// the node's MMST children, recursively flushing children that
    /// complete — Algorithm 1's `updateSubtree` +
    /// `computeAndStoreAggregatedMeasures` + `emptyMemory`.
    fn flush(&mut self, mask: u32, region: u64, mut store: RegionStore<A::Cell>) {
        // 1. Measure computation for this node (if it still has alive MDAs).
        let alive = &self.alive[&mask];
        if alive.iter().any(|&a| a) {
            let geom = &self.geoms[&mask];
            let plan = &self.plans[&mask];
            let algebra = self.algebra;
            let node = self.result.nodes.entry(mask).or_insert_with(|| NodeResult::new(mask));
            let key_buf = &mut self.key_buf;
            let emit_scratch = &mut self.emit_scratch;
            store.for_each(|local, cell| {
                geom.decode_into(region, local, key_buf);
                let values = algebra.emit(cell, alive, plan, emit_scratch);
                node.groups.insert(key_buf.clone(), values);
            });
        }

        // 2. Propagate to MMST children (projections are pre-filtered to
        // surviving subtrees). The last child receives the parent cells by
        // move; earlier ones read them by reference.
        let coverage = self.region_totals[&mask][&region];
        let n_projs = self.projections.get(&mask).map_or(0, Vec::len);
        for pi in 0..n_projs {
            let (child, local_d, local_below, region_d, region_below) = {
                let p = &self.projections[&mask][pi];
                (p.child_mask, p.local_d, p.local_below, p.region_d, p.region_below)
            };
            let child_region = project(region, region_d, region_below);
            let is_last = pi + 1 == n_projs;
            if is_last {
                let taken = std::mem::replace(&mut store, RegionStore::Sparse(Vec::new()));
                let batch: Vec<(u64, ProjectedCell<'_, A::Cell>)> = taken
                    .into_cells()
                    .into_iter()
                    .map(|(l, c)| (project(l, local_d, local_below), ProjectedCell::Owned(c)))
                    .collect();
                self.merge_batch(child, child_region, batch);
            } else {
                let batch: Vec<(u64, ProjectedCell<'_, A::Cell>)> = store
                    .iter_cells()
                    .map(|(l, c)| {
                        (project(l, local_d, local_below), ProjectedCell::Borrowed(c))
                    })
                    .collect();
                self.merge_batch(child, child_region, batch);
            }

            // Flush check (timeToStoreToDisk): every base partition of the
            // child's region processed?
            let total = self.region_totals[&child][&child_region];
            let pending =
                self.pending.get_mut(&child).unwrap().entry(child_region).or_insert(total);
            *pending = pending.saturating_sub(coverage);
            if *pending == 0 {
                self.pending.get_mut(&child).unwrap().remove(&child_region);
                let child_store = self
                    .memory
                    .get_mut(&child)
                    .unwrap()
                    .remove(&child_region)
                    .unwrap_or_else(|| RegionStore::new(&self.geoms[&child]));
                self.flush(child, child_region, child_store);
            }
        }
    }

    /// Merges a batch of projected cells into a child region's store. The
    /// batch is stable-sorted here, so equal child indexes form adjacent
    /// runs in ascending-parent order — merge order is identical in dense
    /// and sparse modes — and each run merges k-way via
    /// [`CubeAlgebra::merge_run`], reading borrowed cells in place (a cell
    /// is cloned only when it must be *placed* into an empty slot).
    fn merge_batch(
        &mut self,
        child: u32,
        child_region: u64,
        mut batch: Vec<(u64, ProjectedCell<'_, A::Cell>)>,
    ) {
        if batch.is_empty() {
            return;
        }
        batch.sort_by_key(|(k, _)| *k);
        let algebra = self.algebra;
        let geom = &self.geoms[&child];
        let store = self
            .memory
            .get_mut(&child)
            .unwrap()
            .entry(child_region)
            .or_insert_with(|| RegionStore::new(geom));

        let mut it = batch.into_iter().peekable();
        let mut run: Vec<ProjectedCell<'_, A::Cell>> = Vec::new();
        match store {
            RegionStore::Dense(slots) => {
                while let Some((idx, first)) = it.next() {
                    run.clear();
                    while it.peek().is_some_and(|(k, _)| *k == idx) {
                        run.push(it.next().unwrap().1);
                    }
                    match &mut slots[idx as usize] {
                        Some(existing) => {
                            if run.is_empty() {
                                algebra.merge(existing, first.get());
                            } else {
                                let mut refs: Vec<&A::Cell> = Vec::with_capacity(run.len() + 1);
                                refs.push(first.get());
                                refs.extend(run.iter().map(ProjectedCell::get));
                                algebra.merge_run(existing, &refs);
                            }
                        }
                        slot @ None => {
                            let mut base = first.into_owned();
                            if !run.is_empty() {
                                let refs: Vec<&A::Cell> =
                                    run.iter().map(ProjectedCell::get).collect();
                                algebra.merge_run(&mut base, &refs);
                            }
                            *slot = Some(base);
                        }
                    }
                }
            }
            RegionStore::Sparse(existing) => {
                // Coalesce runs to owned cells, then merge-join with the
                // existing sorted store.
                let mut coalesced: Vec<(u64, A::Cell)> = Vec::new();
                while let Some((idx, first)) = it.next() {
                    run.clear();
                    while it.peek().is_some_and(|(k, _)| *k == idx) {
                        run.push(it.next().unwrap().1);
                    }
                    let mut base = first.into_owned();
                    if !run.is_empty() {
                        let refs: Vec<&A::Cell> = run.iter().map(ProjectedCell::get).collect();
                        algebra.merge_run(&mut base, &refs);
                    }
                    coalesced.push((idx, base));
                }
                let old = std::mem::take(existing);
                *existing =
                    merge_sorted(old, coalesced, |into, from| algebra.merge(into, from));
            }
        }
    }
}

/// Merges two ascending runs of `(key, cell)` pairs into one, combining
/// cells that share a key with `merge`. `batch` may contain duplicate keys
/// (adjacent after its stable sort); `old` never does.
fn merge_sorted<C>(
    old: Vec<(u64, C)>,
    batch: Vec<(u64, C)>,
    merge: impl Fn(&mut C, &C),
) -> Vec<(u64, C)> {
    let mut out: Vec<(u64, C)> = Vec::with_capacity(old.len() + batch.len());
    let mut old_it = old.into_iter().peekable();
    let mut new_it = batch.into_iter().peekable();
    loop {
        let take_old = match (old_it.peek(), new_it.peek()) {
            (Some((ko, _)), Some((kn, _))) => ko <= kn,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (key, cell) =
            if take_old { old_it.next().unwrap() } else { new_it.next().unwrap() };
        match out.last_mut() {
            Some((k, existing)) if *k == key => merge(existing, &cell),
            _ => out.push((key, cell)),
        }
    }
    out
}

/// Runs the shared engine over a translation.
///
/// `alive` gives per-node MDA liveness (from early-stop); pass `None` to
/// evaluate everything. `policy` selects dense/sparse cell storage (see
/// [`CellStorePolicy`]).
pub(crate) fn run_engine<A: CubeAlgebra>(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    translation: &Translation,
    algebra: &A,
    alive: Option<&HashMap<u32, Vec<bool>>>,
    policy: CellStorePolicy,
) -> CubeResult {
    let mmst = lattice.mmst();
    let n_mdas = spec.mdas().len();
    let labels = spec.mdas().into_iter().map(|m| m.label).collect();

    let mut geoms = HashMap::new();
    for mask in lattice.nodes() {
        geoms.insert(mask, node_geom(lattice, mask, policy));
    }

    // Liveness: default everything alive; keep = self or descendant alive.
    let alive_map: HashMap<u32, Vec<bool>> = lattice
        .nodes()
        .iter()
        .map(|&m| {
            let flags =
                alive.and_then(|a| a.get(&m).cloned()).unwrap_or_else(|| vec![true; n_mdas]);
            assert_eq!(flags.len(), n_mdas);
            (m, flags)
        })
        .collect();
    let plans: HashMap<u32, A::EmitPlan> =
        alive_map.iter().map(|(&m, flags)| (m, algebra.plan_emit(flags))).collect();
    let mut keep: HashMap<u32, bool> = HashMap::new();
    for &mask in mmst.topological().iter().rev() {
        let self_alive = alive_map[&mask].iter().any(|&a| a);
        let child_alive = mmst.children_of(mask).iter().any(|c| keep[c]);
        keep.insert(mask, self_alive || child_alive);
    }

    // Projections, pre-filtered to children whose subtree still emits —
    // the flush hot path then never consults the keep map.
    let n_chunks = lattice.n_chunks();
    let mut projections: HashMap<u32, Vec<Projection>> = HashMap::new();
    for mask in lattice.nodes() {
        let parent_dims = &geoms[&mask].dims;
        let projs: Vec<Projection> = mmst
            .children_of(mask)
            .iter()
            .filter(|child| keep[child])
            .map(|&child| {
                let dropped = mmst.parent[&child].1;
                let pos = parent_dims.iter().position(|&d| d == dropped).unwrap();
                let local_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| lattice.chunks[i] as u64).product();
                let region_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| n_chunks[i] as u64).product();
                Projection {
                    child_mask: child,
                    local_d: lattice.chunks[dropped] as u64,
                    local_below,
                    region_d: n_chunks[dropped] as u64,
                    region_below,
                }
            })
            .collect();
        if !projs.is_empty() {
            projections.insert(mask, projs);
        }
    }

    let root = lattice.root_mask();
    let region_strides = strides_for(&n_chunks);
    // Count, per node region, how many non-empty partitions map to it.
    let mut region_totals: HashMap<u32, HashMap<u64, u64>> =
        lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect();
    for partition in &translation.partitions {
        for mask in lattice.nodes() {
            let geom = &geoms[&mask];
            let region: u64 = geom
                .dims
                .iter()
                .zip(&geom.region_strides)
                .map(|(&d, &s)| partition.coords[d] as u64 * s)
                .sum();
            *region_totals.get_mut(&mask).unwrap().entry(region).or_insert(0) += 1;
        }
    }
    let mut engine = Engine {
        algebra,
        memory: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        pending: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        geoms,
        projections,
        alive: alive_map,
        plans,
        keep,
        region_totals,
        key_buf: Vec::new(),
        emit_scratch: A::EmitScratch::default(),
        result: CubeResult::new(labels),
    };
    if !engine.keep[&root] {
        return engine.result;
    }
    for partition in &translation.partitions {
        // Load the partition into the root (Algorithm 1, line 3). Root cells
        // are complete after their own partition, so the root flushes —
        // and thereby updates its subtree — immediately (lines 4–5).
        // Partition cells are sorted by global index, and global→local is
        // order-preserving within one partition, so the store loads in
        // ascending local order without re-sorting.
        let geom = &engine.geoms[&root];
        let mut store = RegionStore::new(geom);
        for (global, facts) in &partition.cells {
            store.push_sorted(geom.global_to_local(*global), algebra.root_cell(facts));
        }
        let region: u64 =
            partition.coords.iter().zip(&region_strides).map(|(&c, &s)| c as u64 * s).sum();
        engine.flush(root, region, store);
    }
    engine.result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_removes_first_axis() {
        // Space [4,2] (strides [2,1]); dropping axis 0: d=4, below=2 →
        // child = idx mod 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 4, 2), idx % 2);
        }
    }

    #[test]
    fn project_removes_last_axis() {
        // Dropping axis 1 of [4,2]: d=2, below=1 → child = idx / 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 2, 1), idx / 2);
        }
    }

    #[test]
    fn project_removes_middle_axis() {
        // Space [3,4,5], strides [20,5,1]. Drop middle axis (d=4, below=5):
        // child space [3,5], child = a*5 + c.
        for a in 0..3u64 {
            for b in 0..4u64 {
                for c in 0..5u64 {
                    let idx = a * 20 + b * 5 + c;
                    assert_eq!(project(idx, 4, 5), a * 5 + c);
                }
            }
        }
    }

    fn geom_for(lattice: &Lattice, mask: u32) -> NodeGeom {
        node_geom(lattice, mask, CellStorePolicy::Auto)
    }

    #[test]
    fn decode_roundtrips_and_marks_nulls() {
        // Dims {0, 2} of a 3-dim lattice: domains [4, 5], chunks [2, 2].
        let lattice = Lattice::new(vec![4, 9, 5], vec![2, 3, 2]);
        let geom = geom_for(&lattice, 0b101);
        let mut out = Vec::new();
        for a in 0..4u64 {
            for b in 0..5u64 {
                let region =
                    (a / 2) * geom.region_strides[0] + (b / 2) * geom.region_strides[1];
                let local = (a % 2) * geom.local_strides[0] + (b % 2) * geom.local_strides[1];
                geom.decode_into(region, local, &mut out);
                let expect = |c: u64, d: u64| {
                    if c == d - 1 {
                        crate::result::NULL_CODE
                    } else {
                        c as u32
                    }
                };
                assert_eq!(out, vec![expect(a, 4), expect(b, 5)]);
            }
        }
    }

    #[test]
    fn global_to_local_strips_region_offsets() {
        let lattice = Lattice::new(vec![6, 4], vec![2, 2]);
        let geom = geom_for(&lattice, 0b11);
        for a in 0..6u64 {
            for b in 0..4u64 {
                let global = a * geom.global_strides[0] + b * geom.global_strides[1];
                let local = geom.global_to_local(global);
                assert_eq!(local, (a % 2) * geom.local_strides[0] + (b % 2));
            }
        }
    }

    #[test]
    fn auto_policy_uses_capacity_threshold() {
        // Chunk extents 2×2 → capacity 4: dense.
        let small = Lattice::new(vec![1000, 1000], vec![2, 2]);
        assert!(geom_for(&small, 0b11).dense);
        // One giant chunk per dim → capacity 10^6 > 2^16: sparse.
        let big = Lattice::new(vec![1000, 1000], vec![1000, 1000]);
        assert!(!geom_for(&big, 0b11).dense);
        assert!(!node_geom(&big, 0b11, CellStorePolicy::ForceSparse).dense);
        assert!(node_geom(&big, 0b11, CellStorePolicy::ForceDense).dense);
    }

    #[test]
    fn merge_sorted_combines_duplicates_in_order() {
        let old = vec![(1u64, vec![1]), (5, vec![5])];
        let batch = vec![(0u64, vec![0]), (1, vec![10]), (1, vec![11]), (7, vec![7])];
        let merged = merge_sorted(old, batch, |into, from| into.extend_from_slice(from));
        assert_eq!(
            merged,
            vec![
                (0, vec![0]),
                // Existing run first, then batch entries in batch order.
                (1, vec![1, 10, 11]),
                (5, vec![5]),
                (7, vec![7]),
            ]
        );
    }
}
