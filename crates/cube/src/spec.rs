//! Cube specifications: which dimensions, measures, and aggregate functions
//! one lattice evaluates.
//!
//! An MMST node "represents all the MDAs that have dimensions D_j (but might
//! differ in their measure and aggregate function)" (Section 4.3). A
//! [`CubeSpec`] therefore carries the dimension columns once, plus the list
//! of `(measure, aggregate function)` pairs evaluated *simultaneously* in
//! every lattice node — including the implicit fact-count MDA (`count(*)`
//! over distinct facts, e.g. "number of CEOs").

use spade_storage::{AggFn, CategoricalColumn, PreAggregated};

/// One measure attribute with the aggregate functions assigned to it
/// (`S_{M_i}` in the paper's memory analysis).
#[derive(Clone)]
pub struct MeasureSpec<'a> {
    /// The measure's per-fact pre-aggregates (offline phase output).
    pub preagg: &'a PreAggregated,
    /// The aggregate functions to evaluate on this measure.
    pub fns: Vec<AggFn>,
}

/// What a single MDA aggregates.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MdaKind {
    /// `count(*)` over distinct facts — the corrected Example-3 semantics.
    FactCount,
    /// `agg(measure)` where `measure` indexes [`CubeSpec::measures`].
    Measure {
        /// Index into the spec's measure list.
        measure: usize,
        /// The aggregate function applied.
        agg: AggFn,
    },
}

/// One multidimensional aggregate evaluated by a lattice node.
#[derive(Clone, Debug)]
pub struct Mda {
    /// What is aggregated.
    pub kind: MdaKind,
    /// Display label, e.g. `count(*)` or `sum(netWorth)`.
    pub label: String,
}

/// The full specification of one lattice evaluation.
#[derive(Clone)]
pub struct CubeSpec<'a> {
    /// Dimension columns `D₁…D_N` (order fixes the array axes).
    pub dims: Vec<&'a CategoricalColumn>,
    /// Measure attributes with their aggregate functions.
    pub measures: Vec<MeasureSpec<'a>>,
    /// `|CFS|`.
    pub n_facts: usize,
    /// Whether to include the fact-count MDA.
    pub count_facts: bool,
}

impl<'a> CubeSpec<'a> {
    /// Creates a spec with the fact-count MDA enabled.
    pub fn new(
        dims: Vec<&'a CategoricalColumn>,
        measures: Vec<MeasureSpec<'a>>,
        n_facts: usize,
    ) -> Self {
        assert!(!dims.is_empty(), "a lattice needs at least one dimension");
        for d in &dims {
            assert_eq!(d.n_facts(), n_facts, "dimension {} has wrong fact count", d.name());
        }
        for m in &measures {
            assert_eq!(
                m.preagg.n_facts(),
                n_facts,
                "measure {} has wrong fact count",
                m.preagg.name()
            );
        }
        CubeSpec { dims, measures, n_facts, count_facts: true }
    }

    /// Number of dimensions `N`.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension domain sizes *including* the null slot ("We add the
    /// special value null in the domain of each dimension to account for
    /// missing values", Section 4.3). Null is the last code,
    /// `distinct_values()`.
    pub fn domain_sizes(&self) -> Vec<u32> {
        self.dims.iter().map(|d| d.distinct_values() as u32 + 1).collect()
    }

    /// The flat MDA list each lattice node evaluates: the fact count first
    /// (if enabled), then every `(measure, fn)` pair.
    pub fn mdas(&self) -> Vec<Mda> {
        let mut out = Vec::new();
        if self.count_facts {
            out.push(Mda { kind: MdaKind::FactCount, label: "count(*)".to_owned() });
        }
        for (mi, m) in self.measures.iter().enumerate() {
            for &f in &m.fns {
                out.push(Mda {
                    kind: MdaKind::Measure { measure: mi, agg: f },
                    label: format!("{f}({})", m.preagg.name()),
                });
            }
        }
        out
    }

    /// The dimension set `MD` of Theorem 1: indexes of dimensions for which
    /// some fact has more than one value.
    pub fn multi_valued_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_multi_valued())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_storage::{CategoricalColumn, NumericColumn};

    #[test]
    fn mda_list_contains_count_and_measure_fns() {
        let dim = CategoricalColumn::from_rows("g", &[vec!["a"], vec!["b"]]);
        let m = NumericColumn::from_rows("age", &[vec![47.0], vec![66.0]]).preaggregate();
        let spec = CubeSpec::new(
            vec![&dim],
            vec![MeasureSpec { preagg: &m, fns: vec![AggFn::Avg, AggFn::Sum] }],
            2,
        );
        let mdas = spec.mdas();
        assert_eq!(mdas.len(), 3);
        assert_eq!(mdas[0].label, "count(*)");
        assert_eq!(mdas[1].label, "avg(age)");
        assert_eq!(mdas[2].label, "sum(age)");
    }

    #[test]
    fn domain_sizes_include_null() {
        let dim = CategoricalColumn::from_rows("g", &[vec!["a", "b"], vec!["c"]]);
        let spec = CubeSpec::new(vec![&dim], vec![], 2);
        assert_eq!(spec.domain_sizes(), vec![4]); // a, b, c + null
    }

    #[test]
    fn multi_valued_dims_detected() {
        let single = CategoricalColumn::from_rows("g", &[vec!["a"], vec!["b"]]);
        let multi = CategoricalColumn::from_rows("n", &[vec!["x", "y"], vec!["z"]]);
        let spec = CubeSpec::new(vec![&single, &multi], vec![], 2);
        assert_eq!(spec.multi_valued_dims(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "wrong fact count")]
    fn fact_count_mismatch_rejected() {
        let dim = CategoricalColumn::from_rows("g", &[vec!["a"]]);
        let _ = CubeSpec::new(vec![&dim], vec![], 5);
    }
}
