//! Error measurement between a correct result and a baseline result —
//! the instrumentation behind Experiments 2 and 3 (Table 3, Figure 10).
//!
//! "Given an aggregate A, we denote m^A_j the value of the aggregated
//! measure of the j-th group in A, as computed by MVDCube. We denote by
//! p^A_j the value that PGCube^d computes for the same group. … Each
//! aggregate thus leads to a set of error ratios, one per group."

use crate::result::CubeResult;
use std::collections::HashMap;

/// Outcome of comparing a baseline against the correct result.
#[derive(Clone, Debug, Default)]
pub struct ComparisonReport {
    /// Total `(node, MDA)` aggregates compared.
    pub total_aggregates: usize,
    /// Aggregates with at least one differing group (Table 3's "#wrong
    /// aggs").
    pub wrong_aggregates: usize,
    /// Per-MDA-label wrong-aggregate counts.
    pub wrong_by_mda: HashMap<String, usize>,
    /// Error ratios `p/m` of every wrong group, keyed by MDA label
    /// (Figure 10's distributions for `count` and `sum`).
    pub error_ratios: HashMap<String, Vec<f64>>,
}

impl ComparisonReport {
    /// The largest error ratio observed, if any group was wrong.
    pub fn max_ratio(&self) -> Option<f64> {
        self.error_ratios
            .values()
            .flatten()
            .copied()
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Fraction of wrong aggregates.
    pub fn wrong_fraction(&self) -> f64 {
        if self.total_aggregates == 0 {
            0.0
        } else {
            self.wrong_aggregates as f64 / self.total_aggregates as f64
        }
    }

    /// All ratios pooled (for quantile summaries).
    pub fn all_ratios(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self.error_ratios.values().flatten().copied().collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Accumulates another report (e.g. across the lattices of a dataset).
    pub fn merge(&mut self, other: &ComparisonReport) {
        self.total_aggregates += other.total_aggregates;
        self.wrong_aggregates += other.wrong_aggregates;
        for (label, count) in &other.wrong_by_mda {
            *self.wrong_by_mda.entry(label.clone()).or_default() += count;
        }
        for (label, ratios) in &other.error_ratios {
            self.error_ratios.entry(label.clone()).or_default().extend_from_slice(ratios);
        }
    }
}

/// Compares `baseline` against `correct`, group by group.
///
/// Values differing by more than `rel_eps` relatively (or groups present on
/// only one side) mark the enclosing `(node, MDA)` aggregate wrong; every
/// wrong group with comparable positive values contributes a `p/m` ratio.
pub fn compare_results(
    correct: &CubeResult,
    baseline: &CubeResult,
    rel_eps: f64,
) -> ComparisonReport {
    let mut report =
        ComparisonReport { total_aggregates: correct.aggregate_count(), ..Default::default() };
    let n_mdas = correct.mda_labels.len();

    for (mask, correct_node) in &correct.nodes {
        let baseline_node = baseline.node(*mask);
        for mda in 0..n_mdas {
            let label = &correct.mda_labels[mda];
            let mut wrong = false;
            for (key, correct_vals) in &correct_node.groups {
                let m = correct_vals[mda];
                let p = baseline_node.and_then(|n| n.groups.get(key)).and_then(|v| v[mda]);
                match (m, p) {
                    (None, None) => {}
                    (Some(m), Some(p)) => {
                        let tol = rel_eps * (1.0 + m.abs().max(p.abs()));
                        if (m - p).abs() > tol {
                            wrong = true;
                            if m != 0.0 && m.signum() == p.signum() {
                                report
                                    .error_ratios
                                    .entry(label.clone())
                                    .or_default()
                                    .push(p / m);
                            }
                        }
                    }
                    _ => wrong = true,
                }
            }
            // Baseline groups that do not exist in the correct result also
            // falsify the aggregate (phantom groups).
            if let Some(bn) = baseline_node {
                for (key, vals) in &bn.groups {
                    if vals[mda].is_some() && !correct_node.groups.contains_key(key) {
                        wrong = true;
                    }
                }
            }
            if wrong {
                report.wrong_aggregates += 1;
                *report.wrong_by_mda.entry(label.clone()).or_default() += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdcube::fixtures::ceos;
    use crate::mvdcube::{mvd_cube, MvdCubeOptions};
    use crate::pgcube::{pg_cube, PgCubeVariant};
    use crate::spec::{CubeSpec, MeasureSpec};
    use spade_storage::AggFn;

    fn reports() -> (ComparisonReport, ComparisonReport) {
        let data = ceos();
        let spec = CubeSpec::new(
            vec![&data.nationality, &data.gender, &data.area],
            vec![MeasureSpec { preagg: &data.net_worth, fns: vec![AggFn::Sum] }],
            2,
        );
        let opts = MvdCubeOptions::default();
        let correct = mvd_cube(&spec, &opts);
        let star = pg_cube(&spec, PgCubeVariant::Star, &opts);
        let distinct = pg_cube(&spec, PgCubeVariant::Distinct, &opts);
        (compare_results(&correct, &star, 1e-9), compare_results(&correct, &distinct, 1e-9))
    }

    #[test]
    fn star_has_more_wrong_aggregates_than_distinct() {
        let (star, distinct) = reports();
        assert!(star.wrong_aggregates > 0);
        assert!(distinct.wrong_aggregates > 0, "sums stay wrong in PGCube^d");
        assert!(
            star.wrong_aggregates >= distinct.wrong_aggregates,
            "count(distinct) repairs some aggregates (R4's ordering)"
        );
    }

    #[test]
    fn error_ratios_exceed_one() {
        // "p can only be higher than or equal to the correct value m."
        let (star, distinct) = reports();
        for report in [&star, &distinct] {
            for ratios in report.error_ratios.values() {
                for &r in ratios {
                    assert!(r > 1.0, "ratio {r} not an overcount");
                }
            }
        }
        // Figure 4's A4 has Manufacturer counted 5/2 = 2.5×.
        assert!(star.error_ratios["count(*)"].iter().any(|&r| (r - 2.5).abs() < 1e-9));
    }

    #[test]
    fn identical_results_have_no_errors() {
        let data = ceos();
        let spec = CubeSpec::new(
            vec![&data.nationality],
            vec![MeasureSpec { preagg: &data.age, fns: vec![AggFn::Avg] }],
            2,
        );
        let opts = MvdCubeOptions::default();
        let a = mvd_cube(&spec, &opts);
        let b = mvd_cube(&spec, &opts);
        let report = compare_results(&a, &b, 1e-12);
        assert_eq!(report.wrong_aggregates, 0);
        assert_eq!(report.max_ratio(), None);
        assert_eq!(report.wrong_fraction(), 0.0);
    }

    #[test]
    fn theorem1_bound_on_correct_aggregates() {
        // All 3 dims of Example 3 are multi-valued for at least one fact?
        // nationality: n2 has 4 values; area: both multi; gender: single.
        // K = 2 → at most 2^{3−2} = 2 nodes correct; count(*) must be wrong
        // in at least 2^3 − 2 = 6 nodes for PGCube*.
        let (star, _) = reports();
        let count_wrong = star.wrong_by_mda.get("count(*)").copied().unwrap_or(0);
        assert!(count_wrong >= 6, "count(*) wrong in {count_wrong} nodes");
    }
}
