//! Cube evaluation results.
//!
//! Every evaluation algorithm (MVDCube, ArrayCube, PGCube) produces a
//! [`CubeResult`] of identical shape so Experiments 2–3 can compare them
//! group by group: one [`NodeResult`] per lattice node, each mapping a group
//! key (the dimension value codes, with nulls) to the per-MDA aggregated
//! values.

use std::collections::HashMap;

/// The group-key code marking a null dimension value.
///
/// Internally the cube gives null the last slot of each dimension's domain
/// ("We add the special value null in the domain of each dimension",
/// Section 4.3); emitted group keys remap it to this sentinel so consumers
/// can recognize nulls without knowing domain sizes.
///
/// Null groups are kept in [`NodeResult::groups`] — they are required to
/// compute descendant nodes correctly (Figure 4: "Since n₂ lacks gender
/// information, the tuples t₄ to t₁₁ have gender=null. We need to keep them
/// to compute the rest of the lattice correctly") — but they are *not* part
/// of the user-facing aggregate result: per Section 2, a CF missing a
/// dimension "does not contribute to the result". [`NodeResult::mda_values`]
/// therefore skips them when scoring interestingness.
pub const NULL_CODE: u32 = u32::MAX;

/// Display form of [`NULL_CODE`].
pub const NULL_CODE_SENTINEL: &str = "null";

/// The result of one lattice node: `group key → per-MDA value`.
///
/// `values[i] = None` means no fact in the group carried MDA `i`'s measure.
#[derive(Clone, Debug, Default)]
pub struct NodeResult {
    /// Bitmask over the lattice's dimensions (bit `i` = dim `i` grouped on).
    pub mask: u32,
    /// The dimension indexes, ascending (redundant with `mask`, convenient).
    pub dims: Vec<usize>,
    /// Aggregated values per group.
    pub groups: HashMap<Vec<u32>, Vec<Option<f64>>>,
}

impl NodeResult {
    /// Creates an empty result for a node.
    pub fn new(mask: u32) -> Self {
        let dims = (0..32).filter(|i| mask & (1 << i) != 0).collect();
        NodeResult { mask, dims, groups: HashMap::new() }
    }

    /// Number of stored groups, including internal null groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The user-facing groups: those where every dimension has a value
    /// (`W`, the tuple count the interestingness function ranges over).
    pub fn visible_groups(&self) -> impl Iterator<Item = (&Vec<u32>, &Vec<Option<f64>>)> {
        self.groups.iter().filter(|(k, _)| !k.contains(&NULL_CODE))
    }

    /// Number of user-facing groups.
    pub fn visible_group_count(&self) -> usize {
        self.visible_groups().count()
    }

    /// The values of MDA `mda` across *visible* groups, skipping missing
    /// ones — the vector `{t₁.v, …, t_W.v}` handed to `h`.
    pub fn mda_values(&self, mda: usize) -> Vec<f64> {
        let mut vals: Vec<f64> = self.visible_groups().filter_map(|(_, v)| v[mda]).collect();
        // Deterministic order for reproducible scoring.
        vals.sort_by(f64::total_cmp);
        vals
    }
}

/// The full lattice result.
#[derive(Clone, Debug, Default)]
pub struct CubeResult {
    /// MDA labels, indexing the per-group value vectors.
    pub mda_labels: Vec<String>,
    /// Results per lattice node, keyed by dimension mask.
    pub nodes: HashMap<u32, NodeResult>,
}

impl CubeResult {
    /// Creates an empty result carrying the MDA labels.
    pub fn new(mda_labels: Vec<String>) -> Self {
        CubeResult { mda_labels, nodes: HashMap::new() }
    }

    /// The node result for a dimension mask.
    pub fn node(&self, mask: u32) -> Option<&NodeResult> {
        self.nodes.get(&mask)
    }

    /// Total number of `(node, mda)` aggregates represented.
    pub fn aggregate_count(&self) -> usize {
        self.nodes.len() * self.mda_labels.len()
    }

    /// Total number of groups across all nodes.
    pub fn total_groups(&self) -> usize {
        self.nodes.values().map(|n| n.group_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_dims_follow_mask() {
        let n = NodeResult::new(0b101);
        assert_eq!(n.dims, vec![0, 2]);
        assert_eq!(NodeResult::new(0).dims, Vec::<usize>::new());
    }

    #[test]
    fn mda_values_skip_missing() {
        let mut n = NodeResult::new(0b1);
        n.groups.insert(vec![0], vec![Some(3.0), None]);
        n.groups.insert(vec![1], vec![Some(1.0), Some(9.0)]);
        assert_eq!(n.mda_values(0), vec![1.0, 3.0]);
        assert_eq!(n.mda_values(1), vec![9.0]);
    }

    #[test]
    fn aggregate_count_multiplies() {
        let mut r = CubeResult::new(vec!["count(*)".into(), "sum(x)".into()]);
        r.nodes.insert(0b1, NodeResult::new(0b1));
        r.nodes.insert(0b0, NodeResult::new(0b0));
        assert_eq!(r.aggregate_count(), 4);
    }
}
