//! Data Translation: from attribute tables to the partitioned array
//! representation (Section 4.3).
//!
//! "We then translate the join result to lay the data in a partitioned array
//! representation of cells. A partition is a set of pairs (cell index, CF).
//! We assign each RDF node a cell index based on its dimensions' values; in
//! the case of multiple values for a dimension, we assign indexes of all
//! corresponding cells. We add the special value null in the domain of each
//! dimension to account for missing values."
//!
//! Facts with no value on *any* dimension are filtered out (the translation
//! query selects "all the CFs that have a value for at least one of the
//! dimensions"). Each cell is "associated with the set of RDF nodes that
//! correspond to the combination of dimension values that this cell
//! represents", stored as a [`Bitmap`].
//!
//! When early-stop is active, the same pass fills one reservoir per root
//! group (stratified sampling, Section 5.3).
//!
//! # Parallel structure
//!
//! [`translate_budgeted`] runs three deterministic stages on
//! `spade_parallel`:
//!
//! 1. **entry generation** over fact ranges (chunk boundaries depend only
//!    on data size; concatenated in input order this equals the serial
//!    scan),
//! 2. **one sort** of the flat `(partition, cell, fact)` triples — the
//!    triples are unique, so the unstable parallel sort by the full key
//!    reproduces the serial stable `(partition, cell)` sort exactly, and
//! 3. **per-partition materialization**, each partition building its cell
//!    bitmaps via `from_sorted_iter_in` (one low-bits scratch per worker,
//!    no intermediate fact re-collection) and drawing its samples from an
//!    RNG seeded by `(seed, partition index)` — reproducible at any
//!    thread count.

use crate::lattice::Lattice;
use crate::spec::CubeSpec;
use rand::Rng;
use spade_bitmap::Bitmap;
use spade_parallel::{Budget, Cancelled};
use spade_storage::FactId;
use spade_telemetry::SpanCtx;
use std::collections::HashMap;

/// Uniform sample without replacement from a materialized group run —
/// equivalent to the paper's per-group reservoir (Algorithm R) over the
/// same stream, but without a reservoir map on the hot translation path.
fn sample_run<R: Rng>(facts: &[u32], cap: usize, rng: &mut R) -> Vec<u32> {
    if facts.len() <= cap {
        return facts.to_vec();
    }
    // Partial Fisher–Yates over a copy of the run.
    let mut pool = facts.to_vec();
    for i in 0..cap {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(cap);
    pool
}

/// Deterministic per-partition RNG seed: a splitmix64 finalizer over the
/// run seed and the partition's global index, so each partition's sample
/// stream is fixed no matter which worker draws it.
fn part_seed(seed: u64, part: u64) -> u64 {
    let mut z = seed ^ part.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One partition: the cells (with their fact sets) whose dimension codes
/// fall in this partition's chunk ranges.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Per-dimension chunk coordinates.
    pub coords: Vec<u32>,
    /// `(global cell index, facts)`, sorted by cell index.
    pub cells: Vec<(u64, Bitmap)>,
}

/// The stratified sample collected during translation (early-stop input).
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    /// Per root cell: `(sampled fact ids, exact group size)`.
    pub groups: HashMap<u64, (Vec<u32>, u64)>,
    /// Reservoir capacity (the per-group sample size).
    pub capacity: usize,
}

/// Output of the translation step.
#[derive(Clone, Debug)]
pub struct Translation {
    /// Partitions in row-major order of their chunk coordinates.
    pub partitions: Vec<Partition>,
    /// Cell-index strides per dimension (row-major, last dim contiguous).
    pub strides: Vec<u64>,
    /// The stratified sample, when requested.
    pub samples: Option<SampleSet>,
}

/// Row-major strides for the given domain sizes.
pub fn strides_for(domains: &[u32]) -> Vec<u64> {
    let mut strides = vec![1u64; domains.len()];
    for i in (0..domains.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * domains[i + 1] as u64;
    }
    strides
}

/// Facts per entry-generation work item; boundaries depend only on data
/// size, so every thread count generates identical chunk streams.
const FACT_CHUNK: usize = 8192;

/// Translates the CFS into the partitioned array representation
/// (serial convenience wrapper over [`translate_budgeted`]).
///
/// `sample_capacity` enables reservoir sampling with the given per-group
/// size; `seed` makes the sample deterministic.
pub fn translate(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    sample_capacity: Option<usize>,
    seed: u64,
) -> Translation {
    match translate_budgeted(
        spec,
        lattice,
        sample_capacity,
        seed,
        1,
        &Budget::unlimited(),
        &SpanCtx::disabled(),
    ) {
        Ok(t) => t,
        Err(_) => unreachable!("unlimited budget cannot cancel"),
    }
}

/// Parallel, cancellable translation. Output is bit-identical to
/// [`translate`] at any `threads` value; `budget` is checked once per
/// fact chunk and once per partition, so cancellation latency is bounded
/// by one work item. `ctx` records a `translate` span with partition and
/// cell counts.
#[allow(clippy::too_many_arguments)]
pub fn translate_budgeted(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    sample_capacity: Option<usize>,
    seed: u64,
    threads: usize,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<Translation, Cancelled> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let span = ctx.span("translate");
    spade_parallel::fault::fire_with_budget("translate", Some(budget));
    budget.check()?;

    let domains = lattice.domains.clone();
    let total_cells: u128 = domains.iter().map(|&d| d as u128).product();
    assert!(total_cells < (1u128 << 62), "cell space too large for u64 indexes");
    let strides = strides_for(&domains);
    let n_chunks = lattice.n_chunks();
    let part_strides = strides_for(&n_chunks);
    let null_codes: Vec<u32> = domains.iter().map(|&d| d - 1).collect();

    // Stage 1: flat `(partition, cell, fact)` entries, generated per fact
    // range and concatenated in input order — identical to one serial
    // scan, and cheaper / more cache-friendly than hash-accumulating per
    // cell.
    let ranges = spade_parallel::chunk_ranges(spec.n_facts, FACT_CHUNK);
    let chunked: Vec<Vec<(u64, u64, u32)>> =
        spade_parallel::try_map(ranges, threads, |(lo, hi)| {
            budget.check()?;
            let mut entries: Vec<(u64, u64, u32)> = Vec::new();
            let mut code_lists: Vec<&[u32]> = Vec::with_capacity(spec.n_dims());
            for fact in lo as u32..hi as u32 {
                code_lists.clear();
                let mut any_value = false;
                for (i, dim) in spec.dims.iter().enumerate() {
                    let codes = dim.codes_of(FactId(fact));
                    if codes.is_empty() {
                        code_lists.push(std::slice::from_ref(&null_codes[i]));
                    } else {
                        any_value = true;
                        code_lists.push(codes);
                    }
                }
                if !any_value {
                    continue; // the fact misses every dimension: not in the root join
                }
                // Odometer over the cross product of the fact's dimension
                // values.
                let mut idx = vec![0usize; code_lists.len()];
                loop {
                    let mut cell: u64 = 0;
                    let mut part: u64 = 0;
                    for (d, &i) in idx.iter().enumerate() {
                        let code = code_lists[d][i];
                        cell += code as u64 * strides[d];
                        part += (code / lattice.chunks[d]) as u64 * part_strides[d];
                    }
                    entries.push((part, cell, fact));
                    // Advance the odometer.
                    let mut d = code_lists.len();
                    loop {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < code_lists[d].len() {
                            break;
                        }
                        idx[d] = 0;
                        if d == 0 {
                            d = usize::MAX;
                            break;
                        }
                    }
                    if d == usize::MAX {
                        break;
                    }
                }
            }
            Ok(entries)
        })?;
    let mut entries: Vec<(u64, u64, u32)> =
        Vec::with_capacity(chunked.iter().map(Vec::len).sum());
    for c in chunked {
        entries.extend(c);
    }
    budget.check()?;

    // Stage 2: one sort groups the entries by (partition, cell); the
    // triples are unique and facts ascend within each (partition, cell)
    // group as generated, so the unstable sort by the full key equals the
    // serial stable (partition, cell) sort bit for bit.
    let entries = spade_parallel::par_sort(entries, threads);
    budget.check()?;

    // Stage 3: materialize partitions in row-major chunk order (the sort
    // already put them there); each partition is independent.
    let mut part_ranges: Vec<(u64, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let part = entries[i].0;
        let mut j = i;
        while j < entries.len() && entries[j].0 == part {
            j += 1;
        }
        part_ranges.push((part, i..j));
        i = j;
    }
    let entries = &entries;
    // One partition's cells plus its `(cell, (sample, group size))` groups.
    type BuiltPartition = (Partition, Vec<(u64, (Vec<u32>, u64))>);
    let built: Vec<BuiltPartition> =
        spade_parallel::try_map(part_ranges, threads, |(part, range)| {
            budget.check()?;
            let run = &entries[range];
            let coords: Vec<u32> = n_chunks
                .iter()
                .enumerate()
                .map(|(d, _)| ((part / part_strides[d]) % n_chunks[d] as u64) as u32)
                .collect();
            let mut rng = SmallRng::seed_from_u64(part_seed(seed, part));
            let mut cells: Vec<(u64, Bitmap)> = Vec::new();
            let mut groups: Vec<(u64, (Vec<u32>, u64))> = Vec::new();
            let mut scratch: Vec<u16> = Vec::new();
            let mut fact_buf: Vec<u32> = Vec::new();
            let mut k = 0;
            while k < run.len() {
                let cell = run[k].1;
                let mut e = k;
                while e < run.len() && run[e].1 == cell {
                    e += 1;
                }
                let facts = &run[k..e];
                let bitmap =
                    Bitmap::from_sorted_iter_in(facts.iter().map(|t| t.2), &mut scratch);
                if let Some(cap) = sample_capacity {
                    fact_buf.clear();
                    fact_buf.extend(facts.iter().map(|t| t.2));
                    groups.push((
                        cell,
                        (sample_run(&fact_buf, cap, &mut rng), facts.len() as u64),
                    ));
                }
                cells.push((cell, bitmap));
                k = e;
            }
            Ok((Partition { coords, cells }, groups))
        })?;

    let mut partitions: Vec<Partition> = Vec::with_capacity(built.len());
    let mut sample_groups: Option<HashMap<u64, (Vec<u32>, u64)>> =
        sample_capacity.map(|_| HashMap::new());
    for (partition, groups) in built {
        if let Some(map) = sample_groups.as_mut() {
            map.extend(groups);
        }
        partitions.push(partition);
    }

    let samples = sample_capacity.map(|cap| SampleSet {
        groups: sample_groups.take().unwrap_or_default(),
        capacity: cap,
    });

    if span.recorded() {
        span.attr("partitions", partitions.len() as u64);
        span.attr("cells", partitions.iter().map(|p| p.cells.len() as u64).sum());
        span.attr("entries", entries.len() as u64);
    }
    Ok(Translation { partitions, strides, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CubeSpec;
    use spade_storage::CategoricalColumn;

    /// Two facts: fact 0 single-valued, fact 1 multi-valued on dim 0 and
    /// missing dim 1.
    fn mini_spec() -> (CategoricalColumn, CategoricalColumn) {
        let nat = CategoricalColumn::from_rows(
            "nationality",
            &[vec!["Angola"], vec!["Brazil", "France"]],
        );
        let gender = CategoricalColumn::from_rows("gender", &[vec!["Female"], vec![]]);
        (nat, gender)
    }

    #[test]
    fn multi_valued_fact_lands_in_all_its_cells() {
        let (nat, gender) = mini_spec();
        let spec = CubeSpec::new(vec![&nat, &gender], vec![], 2);
        let lattice = Lattice::new(spec.domain_sizes(), vec![4, 2]);
        let t = translate(&spec, &lattice, None, 0);
        let total_pairs: usize = t
            .partitions
            .iter()
            .flat_map(|p| p.cells.iter())
            .map(|(_, b)| b.cardinality() as usize)
            .sum();
        // fact 0: 1 combination; fact 1: 2 nationalities × 1 null gender.
        assert_eq!(total_pairs, 3);
        // Nationality domain = {Angola, Brazil, France} + null = 4;
        // gender = {Female} + null = 2. Fact 1's cells: (Brazil, null) and
        // (France, null) → indexes 1*2+1=3 and 2*2+1=5.
        let all_cells: Vec<u64> =
            t.partitions.iter().flat_map(|p| p.cells.iter().map(|(c, _)| *c)).collect();
        assert!(all_cells.contains(&3) && all_cells.contains(&5));
        // Fact 0: (Angola=0, Female=0) → cell 0.
        assert!(all_cells.contains(&0));
    }

    #[test]
    fn fact_with_no_dimension_values_is_excluded() {
        let nat = CategoricalColumn::from_rows("nat", &[vec!["A"], vec![]]);
        let gen = CategoricalColumn::from_rows("gen", &[vec!["F"], vec![]]);
        let spec = CubeSpec::new(vec![&nat, &gen], vec![], 2);
        let lattice = Lattice::new(spec.domain_sizes(), vec![2, 2]);
        let t = translate(&spec, &lattice, None, 0);
        let facts: Vec<u32> = t
            .partitions
            .iter()
            .flat_map(|p| p.cells.iter())
            .flat_map(|(_, b)| b.iter())
            .collect();
        assert_eq!(facts, vec![0]);
    }

    #[test]
    fn partitions_are_row_major_and_cover_codes() {
        let (nat, gender) = mini_spec();
        let spec = CubeSpec::new(vec![&nat, &gender], vec![], 2);
        // chunk 2 along nationality (4 values → 2 chunks), 2 along gender.
        let lattice = Lattice::new(spec.domain_sizes(), vec![2, 2]);
        let t = translate(&spec, &lattice, None, 0);
        let coords: Vec<Vec<u32>> = t.partitions.iter().map(|p| p.coords.clone()).collect();
        // Sorted row-major; codes 0..1 are chunk 0, 2..3 chunk 1 on dim 0.
        for w in coords.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Every cell's codes belong to its partition's chunk ranges.
        for p in &t.partitions {
            for (cell, _) in &p.cells {
                let nat_code = (cell / t.strides[0]) % 4;
                let gen_code = (cell / t.strides[1]) % 2;
                assert_eq!(nat_code as u32 / 2, p.coords[0]);
                assert_eq!(gen_code as u32 / 2, p.coords[1]);
            }
        }
    }

    #[test]
    fn sampling_collects_every_fact_in_small_groups() {
        let (nat, gender) = mini_spec();
        let spec = CubeSpec::new(vec![&nat, &gender], vec![], 2);
        let lattice = Lattice::new(spec.domain_sizes(), vec![4, 2]);
        let t = translate(&spec, &lattice, Some(8), 7);
        let samples = t.samples.unwrap();
        assert_eq!(samples.capacity, 8);
        // Three occupied cells, each with one fact; reservoirs hold them all.
        assert_eq!(samples.groups.len(), 3);
        for (items, seen) in samples.groups.values() {
            assert_eq!(items.len(), 1);
            assert_eq!(*seen, 1);
        }
    }

    #[test]
    fn parallel_translation_is_thread_invariant() {
        // Wide multi-valued rows so several partitions and cells exist.
        let rows_a: Vec<Vec<&str>> = (0..300)
            .map(|i| match i % 3 {
                0 => vec!["a"],
                1 => vec!["b", "c"],
                _ => vec![],
            })
            .collect();
        let rows_b: Vec<Vec<&str>> =
            (0..300).map(|i| if i % 2 == 0 { vec!["x"] } else { vec!["y"] }).collect();
        let col_a = CategoricalColumn::from_rows("a", &rows_a);
        let col_b = CategoricalColumn::from_rows("b", &rows_b);
        let spec = CubeSpec::new(vec![&col_a, &col_b], vec![], 300);
        let lattice = Lattice::new(spec.domain_sizes(), vec![2, 2]);
        let budget = Budget::unlimited();
        let serial = translate(&spec, &lattice, Some(4), 42);
        for threads in [2usize, 8] {
            let par = translate_budgeted(
                &spec,
                &lattice,
                Some(4),
                42,
                threads,
                &budget,
                &SpanCtx::disabled(),
            )
            .unwrap();
            assert_eq!(par.strides, serial.strides);
            assert_eq!(par.partitions.len(), serial.partitions.len());
            for (p, s) in par.partitions.iter().zip(serial.partitions.iter()) {
                assert_eq!(p.coords, s.coords);
                assert_eq!(p.cells, s.cells);
            }
            let (ps, ss) = (par.samples.unwrap(), serial.samples.clone().unwrap());
            assert_eq!(ps.capacity, ss.capacity);
            let mut pg: Vec<_> = ps.groups.into_iter().collect();
            let mut sg: Vec<_> = ss.groups.into_iter().collect();
            pg.sort();
            sg.sort();
            assert_eq!(pg, sg);
        }
    }

    #[test]
    fn cancelled_budget_stops_translation() {
        let (nat, gender) = mini_spec();
        let spec = CubeSpec::new(vec![&nat, &gender], vec![], 2);
        let lattice = Lattice::new(spec.domain_sizes(), vec![4, 2]);
        let budget = Budget::unlimited();
        budget.cancel();
        assert!(translate_budgeted(&spec, &lattice, None, 0, 2, &budget, &SpanCtx::disabled())
            .is_err());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides_for(&[4, 2]), vec![2, 1]);
        assert_eq!(strides_for(&[3, 5, 2]), vec![10, 2, 1]);
        assert_eq!(strides_for(&[7]), vec![1]);
    }
}
