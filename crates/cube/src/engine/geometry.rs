//! Per-node array geometry: domains, chunk extents, strides, and the
//! dense/sparse storage decision.
//!
//! All projection arithmetic happens in *local* (within-region) coordinates:
//! dropping dimension `j` of a parent's local cell space is the same
//! row-major index surgery as in the global space, with chunk extents; the
//! same surgery over chunk counts maps a parent region to the child region
//! it feeds.

use crate::lattice::Lattice;
use crate::translate::strides_for;

/// Cell capacity up to which a region uses dense storage under
/// [`CellStorePolicy::Auto`]. 2^16 cells keeps a dense region under a few
/// megabytes for every cell payload the engine stores while covering all
/// practically chunked lattices (chunk extents are small by construction).
pub const DENSE_CAPACITY_LIMIT: u64 = 1 << 16;

/// Hard ceiling for [`CellStorePolicy::ForceDense`]; beyond this the engine
/// falls back to sparse storage rather than risk an enormous allocation.
const FORCE_DENSE_CEILING: u64 = 1 << 26;

/// How per-region cell storage is chosen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellStorePolicy {
    /// Dense when the region capacity is at most [`DENSE_CAPACITY_LIMIT`],
    /// sparse otherwise (the precomputed density threshold).
    #[default]
    Auto,
    /// Dense wherever feasible (capacity-capped); for tests/benchmarks.
    ForceDense,
    /// Always sparse; for tests/benchmarks.
    ForceSparse,
}

/// Per-node geometry: dims, domain/chunk extents, local strides, and the
/// precomputed storage decision.
pub(crate) struct NodeGeom {
    pub(crate) dims: Vec<usize>,
    /// Domain size of each of the node's dims (incl. the null slot).
    domains: Vec<u64>,
    /// Row-major strides over the node's *global* cell space (root load).
    pub(crate) global_strides: Vec<u64>,
    /// Chunk extent of each of the node's dims.
    chunk: Vec<u64>,
    /// Chunk count of each of the node's dims.
    n_chunks: Vec<u64>,
    /// Row-major strides over the node's local (within-region) cell space.
    pub(crate) local_strides: Vec<u64>,
    /// Row-major strides over the node's region (chunk) space.
    pub(crate) region_strides: Vec<u64>,
    /// Cells per region: `Π chunk`.
    pub(crate) capacity: u64,
    /// The precomputed density decision: dense flat array vs sorted sparse.
    pub(crate) dense: bool,
    /// Whether the decision was forced by [`CellStorePolicy::ForceDense`]
    /// (load-based downgrades are disabled so tests exercise the dense
    /// path at every shard granularity).
    pub(crate) dense_forced: bool,
}

impl NodeGeom {
    /// Converts a global cell index of this node to its local index inside
    /// the (unique) region containing it.
    #[inline]
    pub(crate) fn global_to_local(&self, global: u64) -> u64 {
        let mut local = 0u64;
        for k in 0..self.dims.len() {
            let code = (global / self.global_strides[k]) % self.domains[k];
            local += (code % self.chunk[k]) * self.local_strides[k];
        }
        local
    }

    /// The node's region index for a base partition's chunk coordinates
    /// (indexed by *global* dimension).
    #[inline]
    pub(crate) fn region_of(&self, coords: &[u32]) -> u64 {
        self.dims.iter().zip(&self.region_strides).map(|(&d, &s)| coords[d] as u64 * s).sum()
    }

    /// Decodes a `(region, local cell)` pair into per-dim value codes,
    /// writing into `out` (cleared first) to avoid per-cell allocation.
    /// The internal null slot (last code of each domain) is remapped to
    /// [`crate::result::NULL_CODE`].
    pub(crate) fn decode_into(&self, region: u64, local: u64, out: &mut Vec<u32>) {
        out.clear();
        for k in 0..self.dims.len() {
            let coord = (region / self.region_strides[k]) % self.n_chunks[k];
            let code = coord * self.chunk[k] + (local / self.local_strides[k]) % self.chunk[k];
            out.push(if code == self.domains[k] - 1 {
                crate::result::NULL_CODE
            } else {
                code as u32
            });
        }
    }
}

/// Precomputed projection from a parent node to a child node (one dropped
/// dimension): `child = (idx / (d·below)) · below + idx mod below`, applied
/// in *local* (within-region) coordinates for cells and in chunk
/// coordinates for regions.
pub(crate) struct Projection {
    pub(crate) child_mask: u32,
    /// Chunk extent of the dropped dimension (parent local space).
    pub(crate) local_d: u64,
    /// Product of parent chunk extents after the dropped position.
    pub(crate) local_below: u64,
    pub(crate) region_d: u64,
    pub(crate) region_below: u64,
}

pub(crate) fn node_geom(lattice: &Lattice, mask: u32, policy: CellStorePolicy) -> NodeGeom {
    let dims = lattice.dims_of(mask);
    let domains32: Vec<u32> = dims.iter().map(|&i| lattice.domains[i]).collect();
    let chunk32: Vec<u32> = dims.iter().map(|&i| lattice.chunks[i]).collect();
    let n_chunks_all = lattice.n_chunks();
    let chunks32: Vec<u32> = dims.iter().map(|&i| n_chunks_all[i]).collect();
    let capacity = chunk32
        .iter()
        .map(|&c| c as u64)
        .try_fold(1u64, u64::checked_mul)
        .expect("region capacity overflows u64");
    let dense = match policy {
        CellStorePolicy::Auto => capacity <= DENSE_CAPACITY_LIMIT,
        CellStorePolicy::ForceDense => capacity <= FORCE_DENSE_CEILING,
        CellStorePolicy::ForceSparse => false,
    };
    let dense_forced = dense && policy == CellStorePolicy::ForceDense;
    NodeGeom {
        global_strides: strides_for(&domains32),
        domains: domains32.iter().map(|&d| d as u64).collect(),
        local_strides: strides_for(&chunk32),
        chunk: chunk32.iter().map(|&c| c as u64).collect(),
        n_chunks: chunks32.iter().map(|&c| c as u64).collect(),
        region_strides: strides_for(&chunks32),
        capacity,
        dense,
        dense_forced,
        dims,
    }
}

#[inline]
pub(crate) fn project(idx: u64, d: u64, below: u64) -> u64 {
    (idx / (d * below)) * below + idx % below
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    #[test]
    fn project_removes_first_axis() {
        // Space [4,2] (strides [2,1]); dropping axis 0: d=4, below=2 →
        // child = idx mod 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 4, 2), idx % 2);
        }
    }

    #[test]
    fn project_removes_last_axis() {
        // Dropping axis 1 of [4,2]: d=2, below=1 → child = idx / 2.
        for idx in 0..8u64 {
            assert_eq!(project(idx, 2, 1), idx / 2);
        }
    }

    #[test]
    fn project_removes_middle_axis() {
        // Space [3,4,5], strides [20,5,1]. Drop middle axis (d=4, below=5):
        // child space [3,5], child = a*5 + c.
        for a in 0..3u64 {
            for b in 0..4u64 {
                for c in 0..5u64 {
                    let idx = a * 20 + b * 5 + c;
                    assert_eq!(project(idx, 4, 5), a * 5 + c);
                }
            }
        }
    }

    fn geom_for(lattice: &Lattice, mask: u32) -> NodeGeom {
        node_geom(lattice, mask, CellStorePolicy::Auto)
    }

    #[test]
    fn decode_roundtrips_and_marks_nulls() {
        // Dims {0, 2} of a 3-dim lattice: domains [4, 5], chunks [2, 2].
        let lattice = Lattice::new(vec![4, 9, 5], vec![2, 3, 2]);
        let geom = geom_for(&lattice, 0b101);
        let mut out = Vec::new();
        for a in 0..4u64 {
            for b in 0..5u64 {
                let region =
                    (a / 2) * geom.region_strides[0] + (b / 2) * geom.region_strides[1];
                let local = (a % 2) * geom.local_strides[0] + (b % 2) * geom.local_strides[1];
                geom.decode_into(region, local, &mut out);
                let expect = |c: u64, d: u64| {
                    if c == d - 1 {
                        crate::result::NULL_CODE
                    } else {
                        c as u32
                    }
                };
                assert_eq!(out, vec![expect(a, 4), expect(b, 5)]);
            }
        }
    }

    #[test]
    fn global_to_local_strips_region_offsets() {
        let lattice = Lattice::new(vec![6, 4], vec![2, 2]);
        let geom = geom_for(&lattice, 0b11);
        for a in 0..6u64 {
            for b in 0..4u64 {
                let global = a * geom.global_strides[0] + b * geom.global_strides[1];
                let local = geom.global_to_local(global);
                assert_eq!(local, (a % 2) * geom.local_strides[0] + (b % 2));
            }
        }
    }

    #[test]
    fn region_of_follows_partition_coords() {
        let lattice = Lattice::new(vec![6, 4, 9], vec![2, 2, 3]);
        let geom = geom_for(&lattice, 0b101);
        // Node dims {0, 2}: chunk counts [3, 3], region strides [3, 1].
        assert_eq!(geom.region_of(&[2, 1, 0]), 6);
        assert_eq!(geom.region_of(&[0, 1, 2]), 2);
    }

    #[test]
    fn auto_policy_uses_capacity_threshold() {
        // Chunk extents 2×2 → capacity 4: dense.
        let small = Lattice::new(vec![1000, 1000], vec![2, 2]);
        assert!(geom_for(&small, 0b11).dense);
        // One giant chunk per dim → capacity 10^6 > 2^16: sparse.
        let big = Lattice::new(vec![1000, 1000], vec![1000, 1000]);
        assert!(!geom_for(&big, 0b11).dense);
        assert!(!node_geom(&big, 0b11, CellStorePolicy::ForceSparse).dense);
        assert!(node_geom(&big, 0b11, CellStorePolicy::ForceDense).dense);
    }
}
