//! Cross-shard merge and parallel measure emit.
//!
//! After the shard cascade, every emitting `(node, region)` holds one
//! sorted partial cell list per shard that touched it. This module finishes
//! the evaluation in three deterministic steps:
//!
//! 1. **Gather** — partials are grouped per `(node, region)` in shard
//!    order (a `BTreeMap` keyed by `(mask, region)` fixes the region
//!    order);
//! 2. **Merge** — each region folds its partials left-to-right with
//!    [`merge_sorted`], combining cells that share a local index via
//!    [`CubeAlgebra::merge`]; regions are independent, so this fans out on
//!    [`spade_parallel::map`] with input-order results;
//! 3. **Emit** — the merged cell lists are cut into weighted tasks
//!    (boundaries depend only on cell counts), each task decodes its
//!    cells' group keys and computes measures with a task-local scratch,
//!    and a serial fold inserts the task outputs into the [`CubeResult`]
//!    in task order.
//!
//! Merging before emitting is what makes sharding invisible: a cell's
//! measures are computed exactly once, from its fully merged payload, just
//! as the serial engine computes them at flush time.

use super::shard::{RegionCells, ShardPartials};
use super::store::{merge_sorted, RegionStore};
use super::{CubeAlgebra, LatticePlan};
use crate::result::{CubeResult, NodeResult};
use spade_parallel::{Budget, Cancelled};
use spade_telemetry::Span;
use std::collections::BTreeMap;

/// Ceiling on the number of emit tasks one evaluation plans.
const EMIT_TARGET: usize = 64;

/// Minimum cells per emit task; below this a region emits as one task.
const MIN_EMIT_CELLS: u64 = 512;

/// A keyed region: `((node mask, region), sorted cells)`.
type KeyedRegion<C> = ((u32, u64), RegionCells<C>);

/// One emit task: a contiguous slice of a merged region's cells.
type EmitTask<'a, C> = (u32, u64, &'a [(u64, C)]);

/// Emits one completed region's measures straight into `result` — the
/// emit-at-flush path of a single-shard plan ([`super::shard::ShardSink`]),
/// where no cross-shard merge is needed. `key_buf`/`scratch` are the
/// cascade-lifetime reusable buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_region_into<A: CubeAlgebra>(
    algebra: &A,
    plan: &LatticePlan<A>,
    mask: u32,
    region: u64,
    store: &RegionStore<A::Cell>,
    key_buf: &mut Vec<u32>,
    scratch: &mut A::EmitScratch,
    result: &mut CubeResult,
) {
    let geom = &plan.geoms[&mask];
    let alive = &plan.alive[&mask];
    let emit_plan = &plan.plans[&mask];
    let node = result.nodes.entry(mask).or_insert_with(|| NodeResult::new(mask));
    for (local, cell) in store.iter_cells() {
        geom.decode_into(region, local, key_buf);
        node.groups.insert(key_buf.clone(), algebra.emit(cell, alive, emit_plan, scratch));
    }
}

/// Merges shard partials and emits measures into `result`. The budget is
/// polled once per merge task and once per emit task; on the `Ok` path the
/// output is bit-identical to an unbudgeted run. `span` (the engine's
/// merge/emit span) gets region/cell-count attrs; the nested `merge` and
/// `emit` child spans split the phase durations.
pub(crate) fn merge_and_emit<A: CubeAlgebra>(
    algebra: &A,
    plan: &LatticePlan<A>,
    shard_outputs: Vec<ShardPartials<A::Cell>>,
    threads: usize,
    mut result: CubeResult,
    budget: &Budget,
    span: &Span,
) -> Result<CubeResult, Cancelled> {
    // —— gather: (node, region) → partials in shard order ——
    let mut grouped: BTreeMap<(u32, u64), Vec<RegionCells<A::Cell>>> = BTreeMap::new();
    for shard in shard_outputs {
        for (mask, region, cells) in shard {
            grouped.entry((mask, region)).or_default().push(cells);
        }
    }

    // —— merge: fold each region's partials in shard order (parallel) ——
    let items: Vec<_> = grouped.into_iter().collect();
    span.attr("regions", items.len() as u64);
    let merge_span = span.ctx().span("merge");
    let merged: Vec<KeyedRegion<A::Cell>> =
        spade_parallel::try_map(items, threads, |((mask, region), mut partials)| {
            budget.check()?;
            // Balanced pairwise tree merge: O(n log k) instead of the
            // O(n·k) left fold. Pairing is by partial index (shard order),
            // so the merge tree is fixed by the data-only shard plan.
            while partials.len() > 1 {
                let mut next = Vec::with_capacity(partials.len().div_ceil(2));
                let mut it = partials.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        Some(b) => next
                            .push(merge_sorted(a, b, |into, from| algebra.merge(into, from))),
                        None => next.push(a),
                    }
                }
                partials = next;
            }
            Ok(((mask, region), partials.pop().expect("region parked without cells")))
        })?;

    drop(merge_span);

    // —— emit: weighted tasks over the merged cell lists (parallel) ——
    let emit_span = span.ctx().span("emit");
    let total_cells: u64 = merged.iter().map(|(_, cells)| cells.len() as u64).sum();
    emit_span.attr("cells", total_cells);
    let task_cells =
        (total_cells.div_ceil(EMIT_TARGET as u64)).max(MIN_EMIT_CELLS).max(1) as usize;
    let mut tasks: Vec<EmitTask<'_, A::Cell>> = Vec::new();
    for ((mask, region), cells) in &merged {
        for (a, b) in spade_parallel::chunk_ranges(cells.len(), task_cells) {
            tasks.push((*mask, *region, &cells[a..b]));
        }
    }
    let outputs = spade_parallel::try_map(tasks, threads, |(mask, region, cells)| {
        budget.check()?;
        let geom = &plan.geoms[&mask];
        let alive = &plan.alive[&mask];
        let emit_plan = &plan.plans[&mask];
        let mut key_buf: Vec<u32> = Vec::new();
        let mut scratch = A::EmitScratch::default();
        let groups: Vec<(Vec<u32>, Vec<Option<f64>>)> = cells
            .iter()
            .map(|(local, cell)| {
                geom.decode_into(region, *local, &mut key_buf);
                (key_buf.clone(), algebra.emit(cell, alive, emit_plan, &mut scratch))
            })
            .collect();
        Ok((mask, groups))
    })?;

    // —— serial fold, in task order ——
    for (mask, groups) in outputs {
        let node = result.nodes.entry(mask).or_insert_with(|| NodeResult::new(mask));
        for (key, values) in groups {
            node.groups.insert(key, values);
        }
    }
    Ok(result)
}
