//! Flat per-region cell storage and the batched fan-in merge machinery.
//!
//! A [`RegionStore`] holds one `(node, region)`'s cells keyed by local cell
//! index, either **dense** (`Vec<Option<Cell>>` of the region's full
//! capacity, one array index per touch) or **sparse** (a `Vec<(idx, Cell)>`
//! sorted by index, batch merge-joined). [`merge_batch`] lands a batch of
//! projected parent cells in a store: the batch is stable-sorted, so all
//! cells mapping to one child cell form an adjacent run in ascending-parent
//! order — merge order is identical in dense and sparse modes — and each
//! run merges k-way via [`CubeAlgebra::merge_run`].

#[cfg(doc)]
use super::geometry::CellStorePolicy;
use super::geometry::NodeGeom;
use super::CubeAlgebra;

/// Flat cell storage of one (node, region): dense array or sorted sparse
/// pairs, keyed by local cell index.
pub(crate) enum RegionStore<C> {
    Dense(Vec<Option<C>>),
    Sparse(Vec<(u64, C)>),
}

impl<C> RegionStore<C> {
    /// A store sized for `expected_load` cells. A region shard that only
    /// touches a small fraction of the region's capacity uses sparse
    /// storage even for a dense-classified node: allocating and scanning
    /// `capacity` slots per shard would turn the per-region cost into
    /// `O(shards · capacity)`. The threshold is a pure function of the
    /// (data-only) shard plan, and dense/sparse batch merges visit runs in
    /// the same ascending order, so the choice never affects results.
    /// [`CellStorePolicy::ForceDense`] disables the downgrade
    /// (`dense_forced`) so tests exercise the dense path at every shard
    /// granularity.
    pub(crate) fn with_load(geom: &NodeGeom, expected_load: u64) -> Self {
        if geom.dense && (geom.dense_forced || expected_load.saturating_mul(4) >= geom.capacity)
        {
            let mut slots = Vec::new();
            slots.resize_with(geom.capacity as usize, || None);
            RegionStore::Dense(slots)
        } else {
            RegionStore::Sparse(Vec::new())
        }
    }

    /// An empty placeholder store (used when moving a store out).
    pub(crate) fn placeholder() -> Self {
        RegionStore::Sparse(Vec::new())
    }

    /// Inserts a cell at a key known to be absent, arriving in ascending
    /// key order (the root-load path).
    pub(crate) fn push_sorted(&mut self, local: u64, cell: C) {
        match self {
            RegionStore::Dense(slots) => {
                debug_assert!(slots[local as usize].is_none());
                slots[local as usize] = Some(cell);
            }
            RegionStore::Sparse(v) => {
                debug_assert!(v.last().is_none_or(|(k, _)| *k < local));
                v.push((local, cell));
            }
        }
    }

    /// Visits occupied cells in ascending local-index order, by reference.
    pub(crate) fn iter_cells(&self) -> Box<dyn Iterator<Item = (u64, &C)> + '_> {
        match self {
            RegionStore::Dense(slots) => Box::new(
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| slot.as_ref().map(|c| (i as u64, c))),
            ),
            RegionStore::Sparse(v) => Box::new(v.iter().map(|(k, c)| (*k, c))),
        }
    }

    /// Consumes the store, yielding occupied cells in ascending order.
    pub(crate) fn into_cells(self) -> Vec<(u64, C)> {
        match self {
            RegionStore::Dense(slots) => slots
                .into_iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.map(|c| (i as u64, c)))
                .collect(),
            RegionStore::Sparse(v) => v,
        }
    }
}

/// A projected cell on its way into a child store: owned (moved out of the
/// parent, for the last MMST child) or borrowed (cloned only if it ends up
/// *placed* — cells that merge into existing/preceding cells are read by
/// reference and never copied).
pub(crate) enum ProjectedCell<'c, C> {
    Owned(C),
    Borrowed(&'c C),
}

impl<'c, C: Clone> ProjectedCell<'c, C> {
    #[inline]
    pub(crate) fn get(&self) -> &C {
        match self {
            ProjectedCell::Owned(c) => c,
            ProjectedCell::Borrowed(r) => r,
        }
    }

    #[inline]
    pub(crate) fn into_owned(self) -> C {
        match self {
            ProjectedCell::Owned(c) => c,
            ProjectedCell::Borrowed(r) => r.clone(),
        }
    }
}

/// Merges a batch of projected cells into a region store. The batch is
/// stable-sorted here, so equal child indexes form adjacent runs in
/// ascending-parent order, and each run merges k-way via
/// [`CubeAlgebra::merge_run`], reading borrowed cells in place (a cell is
/// cloned only when it must be *placed* into an empty slot).
pub(crate) fn merge_batch<A: CubeAlgebra>(
    algebra: &A,
    store: &mut RegionStore<A::Cell>,
    mut batch: Vec<(u64, ProjectedCell<'_, A::Cell>)>,
) {
    if batch.is_empty() {
        return;
    }
    batch.sort_by_key(|(k, _)| *k);
    let mut it = batch.into_iter().peekable();
    let mut run: Vec<ProjectedCell<'_, A::Cell>> = Vec::new();
    match store {
        RegionStore::Dense(slots) => {
            while let Some((idx, first)) = it.next() {
                run.clear();
                while it.peek().is_some_and(|(k, _)| *k == idx) {
                    run.push(it.next().unwrap().1);
                }
                match &mut slots[idx as usize] {
                    Some(existing) => {
                        if run.is_empty() {
                            algebra.merge(existing, first.get());
                        } else {
                            let mut refs: Vec<&A::Cell> = Vec::with_capacity(run.len() + 1);
                            refs.push(first.get());
                            refs.extend(run.iter().map(ProjectedCell::get));
                            algebra.merge_run(existing, &refs);
                        }
                    }
                    slot @ None => {
                        let mut base = first.into_owned();
                        if !run.is_empty() {
                            let refs: Vec<&A::Cell> =
                                run.iter().map(ProjectedCell::get).collect();
                            algebra.merge_run(&mut base, &refs);
                        }
                        *slot = Some(base);
                    }
                }
            }
        }
        RegionStore::Sparse(existing) => {
            // Coalesce runs to owned cells, then merge-join with the
            // existing sorted store.
            let mut coalesced: Vec<(u64, A::Cell)> = Vec::new();
            while let Some((idx, first)) = it.next() {
                run.clear();
                while it.peek().is_some_and(|(k, _)| *k == idx) {
                    run.push(it.next().unwrap().1);
                }
                let mut base = first.into_owned();
                if !run.is_empty() {
                    let refs: Vec<&A::Cell> = run.iter().map(ProjectedCell::get).collect();
                    algebra.merge_run(&mut base, &refs);
                }
                coalesced.push((idx, base));
            }
            let old = std::mem::take(existing);
            *existing = merge_sorted(old, coalesced, |into, from| algebra.merge(into, from));
        }
    }
}

/// Merges two ascending runs of `(key, cell)` pairs into one, combining
/// cells that share a key with `merge`. `batch` may contain duplicate keys
/// (adjacent after its stable sort); `old` never does.
pub(crate) fn merge_sorted<C>(
    old: Vec<(u64, C)>,
    batch: Vec<(u64, C)>,
    merge: impl Fn(&mut C, &C),
) -> Vec<(u64, C)> {
    let mut out: Vec<(u64, C)> = Vec::with_capacity(old.len() + batch.len());
    let mut old_it = old.into_iter().peekable();
    let mut new_it = batch.into_iter().peekable();
    loop {
        let take_old = match (old_it.peek(), new_it.peek()) {
            (Some((ko, _)), Some((kn, _))) => ko <= kn,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (key, cell) =
            if take_old { old_it.next().unwrap() } else { new_it.next().unwrap() };
        match out.last_mut() {
            Some((k, existing)) if *k == key => merge(existing, &cell),
            _ => out.push((key, cell)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sorted_combines_duplicates_in_order() {
        let old = vec![(1u64, vec![1]), (5, vec![5])];
        let batch = vec![(0u64, vec![0]), (1, vec![10]), (1, vec![11]), (7, vec![7])];
        let merged = merge_sorted(old, batch, |into, from| into.extend_from_slice(from));
        assert_eq!(
            merged,
            vec![
                (0, vec![0]),
                // Existing run first, then batch entries in batch order.
                (1, vec![1, 10, 11]),
                (5, vec![5]),
                (7, vec![7]),
            ]
        );
    }
}
