//! The region shard: planning and the per-shard cascade state machine.
//!
//! A **shard** is a contiguous slice of the translation's cell stream —
//! whole partitions where possible, sub-partition cell ranges where one
//! partition dominates — cut by [`plan_shards`] into ranges of roughly
//! equal *weight* (cells plus their fact cardinality, the union cost
//! driver). The auto plan sizes the shard count to the resolved worker
//! budget (one worker ⇒ one shard); decomposition never changes MVDCube
//! results — see the plan-invariance argument in [`super`]'s module
//! docs.
//!
//! Each shard runs the full MVDCube flush cascade over its slice with
//! **shard-local** bookkeeping: `totals` counts the shard's own chunks per
//! `(node, region)`, `pending` counts down as parent regions flush, and a
//! region that completes *within the shard* propagates to its MMST children
//! exactly like the serial engine. What happens to a completed region of an
//! emitting node depends on the [`ShardSink`]:
//!
//! * **multi-shard plans park** — the cells (compacted to a sorted
//!   `(local index, cell)` list) become the shard's partial for the
//!   merge/emit phase in [`super::emit`], because other shards may still
//!   contribute to the same region;
//! * **a single-shard plan emits at flush** — every region is already
//!   complete when it flushes, so measures are computed immediately and
//!   the store is freed, preserving the serial engine's
//!   `O(in-flight regions)` memory profile (no partials survive the
//!   cascade) and its move-into-last-child optimization.
//!
//! Nodes that never emit (pruned by early-stop or cross-lattice sharing)
//! skip both and always move into the last child.

use super::geometry::{project, NodeGeom, Projection};
use super::store::{merge_batch, ProjectedCell, RegionStore};
use super::{CubeAlgebra, LatticePlan};
use crate::result::CubeResult;
use crate::translate::Translation;
use spade_parallel::{Budget, Cancelled};
use spade_telemetry::Span;
use std::collections::HashMap;

/// Shards planned per resolved worker (over-decomposition for load
/// balance: the atomic-cursor fan-out backfills idle workers with the
/// leftover shards).
const SHARDS_PER_WORKER: usize = 4;

/// Ceiling on the number of shards one lattice evaluation plans.
const MAX_SHARDS: usize = 64;

/// Default minimum shard weight (cells + fact memberships): below this,
/// fan-out overhead would outweigh the work, so small lattices run as one
/// shard — the serial path and the parallel path execute identical code.
const MIN_SHARD_WEIGHT: u64 = 4 * 1024;

/// One region's cells, sorted by local index.
pub(crate) type RegionCells<C> = Vec<(u64, C)>;

/// A shard's parked output: one `(node, region, sorted cells)` partial per
/// region of an emitting node the shard completed, in completion order.
pub(crate) type ShardPartials<C> = Vec<(u32, u64, RegionCells<C>)>;

/// One contiguous run of a partition's cells assigned to a shard. A shard
/// holds at most one chunk per partition (ranges are contiguous over the
/// flattened cell stream), so each chunk counts as one arrival in the
/// shard-local flush bookkeeping — the shard-local analogue of "one
/// partition arrived".
pub(crate) struct ShardChunk {
    pub(crate) partition: usize,
    pub(crate) start: usize,
    pub(crate) end: usize,
}

/// Cuts the translation's cell stream into shards. `target_weight`
/// overrides the auto granularity (tests and benchmarks) and makes the
/// plan a pure function of the data and that knob; otherwise the auto plan
/// targets [`SHARDS_PER_WORKER`] shards per resolved worker — in
/// particular, one worker gets exactly one shard, so a serial run pays no
/// decomposition tax (each extra shard costs an `O(content)` slice of
/// cross-shard merge work, the parallelization tax a multi-core run
/// amortizes). Decomposition never changes MVDCube results — see the
/// plan-invariance argument in [`super`]'s module docs.
pub(crate) fn plan_shards(
    translation: &Translation,
    target_weight: Option<u64>,
    threads: usize,
) -> Vec<Vec<ShardChunk>> {
    let mut owners: Vec<(usize, usize)> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for (pi, partition) in translation.partitions.iter().enumerate() {
        for (ci, (_, facts)) in partition.cells.iter().enumerate() {
            owners.push((pi, ci));
            weights.push(1 + facts.cardinality());
        }
    }
    let resolved = spade_parallel::resolve_threads(threads);
    let ranges = match target_weight {
        Some(w) => spade_parallel::weighted_ranges(&weights, usize::MAX, w.max(1)),
        None if resolved <= 1 => spade_parallel::weighted_ranges(&weights, 1, u64::MAX),
        None => spade_parallel::weighted_ranges(
            &weights,
            (resolved * SHARDS_PER_WORKER).min(MAX_SHARDS),
            MIN_SHARD_WEIGHT,
        ),
    };
    ranges
        .into_iter()
        .map(|(a, b)| {
            let mut chunks: Vec<ShardChunk> = Vec::new();
            for &(pi, ci) in &owners[a..b] {
                match chunks.last_mut() {
                    Some(c) if c.partition == pi => c.end = ci + 1,
                    _ => chunks.push(ShardChunk { partition: pi, start: ci, end: ci + 1 }),
                }
            }
            chunks
        })
        .collect()
}

/// Where a completed region of an emitting node goes.
pub(crate) enum ShardSink<'r, A: CubeAlgebra> {
    /// Multi-shard plan: park sorted partials for the cross-shard merge.
    Park(ShardPartials<A::Cell>),
    /// Single-shard plan: emit measures at flush and free the region.
    Emit { result: &'r mut CubeResult, key_buf: Vec<u32>, scratch: A::EmitScratch },
}

/// The shard-local cascade state.
struct RegionShard<'a, 'r, A: CubeAlgebra> {
    algebra: &'a A,
    plan: &'a LatticePlan<A>,
    /// node → region → flat cell storage (in-flight regions).
    memory: HashMap<u32, HashMap<u64, RegionStore<A::Cell>>>,
    /// node → region → remaining shard chunks before local completion.
    pending: HashMap<u32, HashMap<u64, u64>>,
    /// node → region → number of shard chunks mapping to it.
    totals: HashMap<u32, HashMap<u64, u64>>,
    /// Total cells in the shard's slice — the store sizing hint (see
    /// [`RegionStore::with_load`]).
    load: u64,
    /// What to do with completed regions of emitting nodes.
    sink: ShardSink<'r, A>,
}

/// Attaches the shard's workload attrs (chunk/cell/fact counts, executing
/// thread) to its span. Fact cardinalities are only summed when the span
/// is actually recorded.
fn annotate(span: &Span, translation: &Translation, chunks: &[ShardChunk]) {
    if !span.recorded() {
        return;
    }
    let cells: u64 = chunks.iter().map(|c| (c.end - c.start) as u64).sum();
    let facts: u64 = chunks
        .iter()
        .flat_map(|c| &translation.partitions[c.partition].cells[c.start..c.end])
        .map(|(_, facts)| facts.cardinality())
        .sum();
    span.attr("chunks", chunks.len() as u64);
    span.attr("cells", cells);
    span.attr("facts", facts);
    span.record_thread();
}

/// Runs one shard of a multi-shard plan, returning its parked
/// `(node, region)` partials. Deterministic: chunks are processed in plan
/// order and the cascade below is single-owner. The budget is checked
/// between region flushes, so cancellation latency is bounded by one
/// chunk's cascade.
pub(crate) fn run_shard<A: CubeAlgebra>(
    algebra: &A,
    plan: &LatticePlan<A>,
    translation: &Translation,
    chunks: &[ShardChunk],
    budget: &Budget,
    span: &Span,
) -> Result<ShardPartials<A::Cell>, Cancelled> {
    annotate(span, translation, chunks);
    match cascade(algebra, plan, translation, chunks, ShardSink::Park(Vec::new()), budget)? {
        ShardSink::Park(out) => Ok(out),
        ShardSink::Emit { .. } => unreachable!("park sink in, park sink out"),
    }
}

/// Runs a single-shard plan end to end, emitting measures into `result` at
/// flush time (no partials, no merge phase — the serial fast path).
pub(crate) fn run_shard_emit<A: CubeAlgebra>(
    algebra: &A,
    plan: &LatticePlan<A>,
    translation: &Translation,
    chunks: &[ShardChunk],
    result: &mut CubeResult,
    budget: &Budget,
    span: &Span,
) -> Result<(), Cancelled> {
    annotate(span, translation, chunks);
    let sink =
        ShardSink::Emit { result, key_buf: Vec::new(), scratch: A::EmitScratch::default() };
    cascade(algebra, plan, translation, chunks, sink, budget)?;
    Ok(())
}

fn cascade<'r, A: CubeAlgebra>(
    algebra: &A,
    plan: &LatticePlan<A>,
    translation: &Translation,
    chunks: &[ShardChunk],
    sink: ShardSink<'r, A>,
    budget: &Budget,
) -> Result<ShardSink<'r, A>, Cancelled> {
    let mut totals: HashMap<u32, HashMap<u64, u64>> =
        plan.nodes.iter().map(|&m| (m, HashMap::new())).collect();
    for chunk in chunks {
        let coords = &translation.partitions[chunk.partition].coords;
        for &mask in &plan.nodes {
            let region = plan.geoms[&mask].region_of(coords);
            *totals.get_mut(&mask).unwrap().entry(region).or_insert(0) += 1;
        }
    }
    let mut shard = RegionShard {
        algebra,
        plan,
        memory: plan.nodes.iter().map(|&m| (m, HashMap::new())).collect(),
        pending: plan.nodes.iter().map(|&m| (m, HashMap::new())).collect(),
        totals,
        load: chunks.iter().map(|c| (c.end - c.start) as u64).sum(),
        sink,
    };
    let root_geom = &plan.geoms[&plan.root];
    for chunk in chunks {
        // Cancellation point between region flushes: an expired request
        // unwinds within one chunk's cascade. Checking *before* the work
        // (never conditionally skipping it) keeps completed outputs
        // bit-identical to the budget-less path.
        budget.check()?;
        let partition = &translation.partitions[chunk.partition];
        // Load the chunk into the root. Partition cells are sorted by
        // global index, and global→local is order-preserving within one
        // partition, so the store loads in ascending local order without
        // re-sorting. Root regions are complete after their own chunks
        // (one chunk per partition per shard), so the root flushes — and
        // thereby updates its subtree — immediately.
        let mut store = RegionStore::with_load(root_geom, shard.load);
        for (global, facts) in &partition.cells[chunk.start..chunk.end] {
            store.push_sorted(root_geom.global_to_local(*global), algebra.root_cell(facts));
        }
        shard.flush(plan.root, root_geom.region_of(&partition.coords), store);
    }
    debug_assert!(shard.pending.values().all(HashMap::is_empty), "unflushed regions");
    Ok(shard.sink)
}

impl<'a, 'r, A: CubeAlgebra> RegionShard<'a, 'r, A> {
    /// Handles a shard-locally completed region: emits it (single-shard
    /// sink), propagates it to the node's MMST children, recursively
    /// flushing children that complete, and finally parks the cells
    /// (multi-shard sink) — Algorithm 1's `updateSubtree` +
    /// `computeAndStoreAggregatedMeasures` + `emptyMemory`, with parking
    /// replacing the measure computation when other shards may still
    /// contribute.
    fn flush(&mut self, mask: u32, region: u64, mut store: RegionStore<A::Cell>) {
        let coverage = self.totals[&mask][&region];
        let emits = self.plan.emits[&mask];
        // Emit-at-flush (single-shard plans): the region is globally
        // complete, so compute measures now and let the store move into
        // the last child below.
        let mut parks = false;
        if emits {
            match &mut self.sink {
                ShardSink::Park(_) => parks = true,
                ShardSink::Emit { result, key_buf, scratch } => super::emit::emit_region_into(
                    self.algebra,
                    self.plan,
                    mask,
                    region,
                    &store,
                    key_buf,
                    scratch,
                    result,
                ),
            }
        }
        // Propagate to MMST children (projections are pre-filtered to
        // surviving subtrees). Unless the cells must park afterwards, the
        // last child receives them by move; a parking node's children all
        // read them by reference.
        let n_projs = self.plan.projections.get(&mask).map_or(0, Vec::len);
        for pi in 0..n_projs {
            let (child, local_d, local_below, region_d, region_below) = {
                let p: &Projection = &self.plan.projections[&mask][pi];
                (p.child_mask, p.local_d, p.local_below, p.region_d, p.region_below)
            };
            let child_region = project(region, region_d, region_below);
            if !parks && pi + 1 == n_projs {
                let taken = std::mem::replace(&mut store, RegionStore::placeholder());
                let batch: Vec<(u64, ProjectedCell<'_, A::Cell>)> = taken
                    .into_cells()
                    .into_iter()
                    .map(|(l, c)| (project(l, local_d, local_below), ProjectedCell::Owned(c)))
                    .collect();
                self.merge_into(child, child_region, batch);
            } else {
                let batch: Vec<(u64, ProjectedCell<'_, A::Cell>)> = store
                    .iter_cells()
                    .map(|(l, c)| {
                        (project(l, local_d, local_below), ProjectedCell::Borrowed(c))
                    })
                    .collect();
                self.merge_into(child, child_region, batch);
            }

            // Shard-local flush check (timeToStoreToDisk): every shard
            // chunk of the child's region processed?
            let total = self.totals[&child][&child_region];
            let pending =
                self.pending.get_mut(&child).unwrap().entry(child_region).or_insert(total);
            *pending = pending.saturating_sub(coverage);
            if *pending == 0 {
                self.pending.get_mut(&child).unwrap().remove(&child_region);
                let child_store =
                    self.memory.get_mut(&child).unwrap().remove(&child_region).unwrap_or_else(
                        || RegionStore::with_load(&self.plan.geoms[&child], self.load),
                    );
                self.flush(child, child_region, child_store);
            }
        }
        if parks {
            if let ShardSink::Park(out) = &mut self.sink {
                out.push((mask, region, store.into_cells()));
            }
        }
    }

    fn merge_into(
        &mut self,
        child: u32,
        child_region: u64,
        batch: Vec<(u64, ProjectedCell<'_, A::Cell>)>,
    ) {
        let geom: &NodeGeom = &self.plan.geoms[&child];
        let load = self.load;
        let store = self
            .memory
            .get_mut(&child)
            .unwrap()
            .entry(child_region)
            .or_insert_with(|| RegionStore::with_load(geom, load));
        merge_batch(self.algebra, store, batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::Partition;
    use spade_bitmap::Bitmap;

    fn translation_with(cells_per_partition: &[usize]) -> Translation {
        let partitions = cells_per_partition
            .iter()
            .enumerate()
            .map(|(pi, &n)| Partition {
                coords: vec![pi as u32],
                cells: (0..n as u64)
                    .map(|c| (c, Bitmap::from_sorted(&[c as u32, c as u32 + 1])))
                    .collect(),
            })
            .collect();
        Translation { partitions, strides: vec![1], samples: None }
    }

    #[test]
    fn shards_cover_every_cell_exactly_once() {
        let t = translation_with(&[5, 1, 9, 3]);
        for target in [1u64, 4, 1_000_000] {
            let shards = plan_shards(&t, Some(target), 1);
            let mut seen: Vec<Vec<bool>> =
                t.partitions.iter().map(|p| vec![false; p.cells.len()]).collect();
            for shard in &shards {
                for c in shard {
                    for slot in &mut seen[c.partition][c.start..c.end] {
                        assert!(!*slot, "cell covered twice");
                        *slot = true;
                    }
                }
            }
            assert!(seen.iter().flatten().all(|&s| s), "target {target}: cells missed");
        }
    }

    #[test]
    fn one_chunk_per_partition_per_shard() {
        let t = translation_with(&[6, 6, 6]);
        for target in [1u64, 2, 7, 100] {
            for shard in plan_shards(&t, Some(target), 1) {
                let mut parts: Vec<usize> = shard.iter().map(|c| c.partition).collect();
                let before = parts.len();
                parts.dedup();
                assert_eq!(parts.len(), before, "partition split within one shard");
            }
        }
    }

    #[test]
    fn auto_plan_scales_with_workers() {
        let t = translation_with(&[4000, 4000, 4000]);
        assert_eq!(plan_shards(&t, None, 1).len(), 1, "serial runs pay no decomposition tax");
        let eight = plan_shards(&t, None, 8).len();
        assert!(eight > 1 && eight <= 64, "got {eight} shards for 8 workers");
    }

    #[test]
    fn huge_target_yields_single_shard() {
        let t = translation_with(&[4, 4]);
        let shards = plan_shards(&t, Some(u64::MAX), 8);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 2);
    }

    #[test]
    fn tiny_target_splits_within_partitions() {
        let t = translation_with(&[8]);
        let shards = plan_shards(&t, Some(1), 1);
        assert!(shards.len() > 1, "expected sub-partition shards");
    }
}
