//! The shared one-pass lattice evaluation engine — region-sharded.
//!
//! MVDCube and the classical ArrayCube baseline differ only in what a cube
//! cell *holds* and how parent cells combine into child cells:
//!
//! * MVDCube cells hold **fact sets** (Roaring bitmaps); combination is set
//!   union, which consolidates a multi-valued fact that occupies several
//!   parent cells into one child membership (the correctness fix);
//! * ArrayCube cells hold **partial aggregates**; combination is algebraic
//!   addition, which double-counts exactly as Lemma 1 describes.
//!
//! Everything else — partition iteration, MMST propagation, the
//! write-to-disk check, measure emit — is the same machinery, captured by
//! [`CubeAlgebra`] and [`run_engine`] and organised as a module tree:
//! [`geometry`] (per-node array geometry and projections), [`store`] (flat
//! dense/sparse region storage and batched fan-in merges), [`shard`] (the
//! shard plan and per-shard cascade), and [`emit`] (cross-shard merge and
//! parallel measure computation).
//!
//! ## Shard lifecycle (intra-lattice parallelism)
//!
//! Cube memory is keyed by *(MMST node, region)*, where a node's region is
//! the projection of partition (chunk) coordinates onto its dimensions, and
//! there is **no cross-region data flow within a node** — a parent region
//! feeds exactly one region of each child. One evaluation therefore runs as
//! a fan-out over *region shards*:
//!
//! 1. **Plan** ([`shard::plan_shards`]): the translation's cell stream is
//!    cut into contiguous shards of roughly equal weight (cell count plus
//!    fact cardinality). The auto plan targets a few shards per resolved
//!    worker — one worker plans exactly one shard, so a serial run pays no
//!    decomposition tax; `shard_weight` pins an exact granularity instead.
//! 2. **Cascade** ([`shard::run_shard`], fanned out on
//!    [`spade_parallel::map`]): each shard replays the serial engine's
//!    flush cascade over its slice with shard-local partition counters,
//!    *parking* each completed region's sorted cell list instead of
//!    emitting measures. A single-shard plan skips parking entirely and
//!    emits at flush time ([`shard::run_shard_emit`]), keeping the serial
//!    engine's `O(in-flight regions)` memory profile.
//! 3. **Merge + emit** ([`emit::merge_and_emit`]): per `(node, region)`,
//!    the shard partials merge by a balanced pairwise tree in shard order
//!    (cells sharing a local index combine via [`CubeAlgebra::merge`]),
//!    then the merged cell lists are cut into weighted emit tasks that
//!    compute group keys and measures in parallel; a serial fold writes
//!    the results.
//!
//! ## Determinism argument
//!
//! The engine's output is **plan-invariant** — a property strictly
//! stronger than thread-count determinism:
//!
//! * a shard decomposition only changes *which intermediate partials
//!   exist*, never the final content of a cell: projection maps each
//!   parent cell to exactly one child cell, and [`CubeAlgebra::merge`] is
//!   associative and commutative (set union for MVDCube), so merging
//!   partials at the child equals merging at the parent and then
//!   projecting, whatever the grouping;
//! * measures are emitted exactly once per cell, from its fully merged
//!   payload — for MVDCube every emitted `f64` is a function of the final
//!   fact set alone, so it cannot observe the decomposition;
//! * every fan-out ([`spade_parallel::map`]) returns results in input
//!   order and each shard is single-owner, so no ordering the computation
//!   depends on is left to the scheduler.
//!
//! Hence `threads` (which only picks the shard count and the worker pool)
//! is a pure latency knob: results are bit-identical at every value, on
//! every machine. For a cell algebra whose merge is associative only up to
//! floating-point rounding (the ArrayCube baseline's partial sums), the
//! last bits can depend on the plan; such runs pin `shard_weight` (or keep
//! the default single-worker plan, as every experiment binary does) to fix
//! the grouping. The pipeline itself only evaluates the MVD algebra.
//!
//! `crates/core/tests/parallel_determinism.rs` pins thread-count
//! determinism end to end at 1/2/8 threads; `crates/cube/tests/store_prop.rs`
//! pins plan-invariance itself, comparing the sharded engine bit-exactly
//! against the preserved [`crate::engine_baseline`] across storage
//! policies, thread counts, and arbitrary shard granularities.

pub(crate) mod emit;
pub(crate) mod geometry;
pub(crate) mod shard;
pub(crate) mod store;

pub use geometry::{CellStorePolicy, DENSE_CAPACITY_LIMIT};

use crate::lattice::Lattice;
use crate::result::CubeResult;
use crate::spec::CubeSpec;
use crate::translate::Translation;
use geometry::{node_geom, NodeGeom, Projection};
use spade_bitmap::Bitmap;
use spade_parallel::{Budget, Cancelled};
use spade_telemetry::SpanCtx;
use std::collections::HashMap;

/// What a cube cell holds and how cells combine — the algorithm-specific
/// part of lattice evaluation. `Sync`/`Send` bounds let the engine fan the
/// cascade and emit phases out over threads; `merge` must be associative
/// and commutative (see the module docs' determinism argument).
pub(crate) trait CubeAlgebra: Sync {
    /// Cell payload.
    type Cell: Clone + Send + Sync;

    /// Per-node precomputed emit state (e.g. which measures are needed),
    /// hoisted out of the per-cell hot path.
    type EmitPlan: Send + Sync;

    /// Reusable per-task scratch buffers for `emit` (e.g. the decoded
    /// fact list), so the hot path allocates nothing per cell.
    type EmitScratch: Default;

    /// Builds a root cell from the facts of one array cell.
    fn root_cell(&self, facts: &Bitmap) -> Self::Cell;

    /// Combines a parent's cell into a child's cell (projection step).
    fn merge(&self, into: &mut Self::Cell, from: &Self::Cell);

    /// Combines a *run* of cells into one (the fan-in path: every parent
    /// cell projecting onto the same child cell, batched by the engine's
    /// sorted storage). Defaults to folding [`CubeAlgebra::merge`] in
    /// order; algebras with an associative combine can override with a
    /// one-pass k-way merge.
    fn merge_run(&self, into: &mut Self::Cell, from: &[&Self::Cell]) {
        for f in from {
            self.merge(into, f);
        }
    }

    /// Prepares per-node emit state from the node's MDA liveness.
    fn plan_emit(&self, alive: &[bool]) -> Self::EmitPlan;

    /// Computes the per-MDA values of a finished cell. `alive[i] == false`
    /// means MDA `i` was pruned by early-stop and must not be computed.
    fn emit(
        &self,
        cell: &Self::Cell,
        alive: &[bool],
        plan: &Self::EmitPlan,
        scratch: &mut Self::EmitScratch,
    ) -> Vec<Option<f64>>;
}

/// The read-only per-evaluation plan every shard and emit task shares:
/// geometry, projections (pre-filtered to surviving subtrees), MDA
/// liveness, and per-node emit plans.
pub(crate) struct LatticePlan<A: CubeAlgebra> {
    pub(crate) root: u32,
    /// All node masks, root first.
    pub(crate) nodes: Vec<u32>,
    pub(crate) geoms: HashMap<u32, NodeGeom>,
    pub(crate) projections: HashMap<u32, Vec<Projection>>,
    /// node → per-MDA alive flags.
    pub(crate) alive: HashMap<u32, Vec<bool>>,
    /// node → whether any MDA is alive (the node emits / parks).
    pub(crate) emits: HashMap<u32, bool>,
    /// node → precomputed emit plan (needed measures etc.).
    pub(crate) plans: HashMap<u32, A::EmitPlan>,
    /// Whether the root's subtree emits anything at all.
    pub(crate) keep_root: bool,
}

fn build_plan<A: CubeAlgebra>(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    algebra: &A,
    alive: Option<&HashMap<u32, Vec<bool>>>,
    policy: CellStorePolicy,
) -> LatticePlan<A> {
    let mmst = lattice.mmst();
    let n_mdas = spec.mdas().len();
    let nodes = lattice.nodes();

    let mut geoms = HashMap::new();
    for &mask in &nodes {
        geoms.insert(mask, node_geom(lattice, mask, policy));
    }

    // Liveness: default everything alive; keep = self or descendant alive.
    let alive_map: HashMap<u32, Vec<bool>> = nodes
        .iter()
        .map(|&m| {
            let flags =
                alive.and_then(|a| a.get(&m).cloned()).unwrap_or_else(|| vec![true; n_mdas]);
            assert_eq!(flags.len(), n_mdas);
            (m, flags)
        })
        .collect();
    let emits: HashMap<u32, bool> =
        alive_map.iter().map(|(&m, flags)| (m, flags.iter().any(|&a| a))).collect();
    let plans: HashMap<u32, A::EmitPlan> =
        alive_map.iter().map(|(&m, flags)| (m, algebra.plan_emit(flags))).collect();
    let mut keep: HashMap<u32, bool> = HashMap::new();
    for &mask in mmst.topological().iter().rev() {
        let child_alive = mmst.children_of(mask).iter().any(|c| keep[c]);
        keep.insert(mask, emits[&mask] || child_alive);
    }

    // Projections, pre-filtered to children whose subtree still emits —
    // the flush hot path then never consults the keep map.
    let n_chunks = lattice.n_chunks();
    let mut projections: HashMap<u32, Vec<Projection>> = HashMap::new();
    for &mask in &nodes {
        let parent_dims = &geoms[&mask].dims;
        let projs: Vec<Projection> = mmst
            .children_of(mask)
            .iter()
            .filter(|child| keep[child])
            .map(|&child| {
                let dropped = mmst.parent[&child].1;
                let pos = parent_dims.iter().position(|&d| d == dropped).unwrap();
                let local_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| lattice.chunks[i] as u64).product();
                let region_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| n_chunks[i] as u64).product();
                Projection {
                    child_mask: child,
                    local_d: lattice.chunks[dropped] as u64,
                    local_below,
                    region_d: n_chunks[dropped] as u64,
                    region_below,
                }
            })
            .collect();
        if !projs.is_empty() {
            projections.insert(mask, projs);
        }
    }

    let root = lattice.root_mask();
    let keep_root = keep[&root];
    LatticePlan { root, nodes, geoms, projections, alive: alive_map, emits, plans, keep_root }
}

/// The engine's execution knobs (extracted from [`crate::mvdcube::MvdCubeOptions`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EngineExec {
    /// Dense/sparse cell storage selection.
    pub(crate) policy: CellStorePolicy,
    /// Workers for the shard cascade and emit phases (`0` = all cores,
    /// `1` = serial); results are bit-identical for every value.
    pub(crate) threads: usize,
    /// Shard granularity override (tests/benchmarks; `None` = auto).
    pub(crate) shard_weight: Option<u64>,
}

impl EngineExec {
    pub(crate) fn from_options(options: &crate::mvdcube::MvdCubeOptions) -> Self {
        EngineExec {
            policy: options.store_policy,
            threads: options.threads,
            shard_weight: options.shard_weight,
        }
    }
}

/// Runs the region-sharded engine over a translation.
///
/// `alive` gives per-node MDA liveness (from early-stop); pass `None` to
/// evaluate everything. See [`EngineExec`] for the execution knobs and the
/// module docs for the shard lifecycle. The budget is polled between
/// region flushes and between merge/emit tasks: with
/// [`Budget::unlimited`] the run cannot fail, and checks never alter any
/// computation, so completed results stay bit-identical to a run without
/// a deadline.
///
/// `ctx` records one child span per shard (ordered by shard index, so the
/// span-tree shape is plan- and scheduler-independent for a fixed plan)
/// plus a merge/emit span on multi-shard plans; a disabled context makes
/// all of it free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine<A: CubeAlgebra>(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    translation: &Translation,
    algebra: &A,
    alive: Option<&HashMap<u32, Vec<bool>>>,
    exec: EngineExec,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<CubeResult, Cancelled> {
    let labels = spec.mdas().into_iter().map(|m| m.label).collect();
    let result = CubeResult::new(labels);
    let plan = build_plan(spec, lattice, algebra, alive, exec.policy);
    if !plan.keep_root {
        return Ok(result);
    }
    let shards = shard::plan_shards(translation, exec.shard_weight, exec.threads);
    if let [chunks] = shards.as_slice() {
        // Single-shard plan: every region is globally complete when it
        // flushes, so measures are emitted at flush time and the cascade
        // keeps the serial engine's O(in-flight regions) memory profile —
        // no partials, no merge phase.
        let mut result = result;
        let span = ctx.span_at("shard", 0);
        shard::run_shard_emit(algebra, &plan, translation, chunks, &mut result, budget, &span)?;
        return Ok(result);
    }
    let indexed: Vec<(usize, Vec<shard::ShardChunk>)> =
        shards.into_iter().enumerate().collect();
    let outputs = spade_parallel::try_map(indexed, exec.threads, |(i, chunks)| {
        let span = ctx.span_at("shard", i as u64);
        shard::run_shard(algebra, &plan, translation, &chunks, budget, &span)
    })?;
    let merge_span = ctx.span("merge_emit");
    emit::merge_and_emit(algebra, &plan, outputs, exec.threads, result, budget, &merge_span)
}
