//! The classical ArrayCube baseline (Zhao, Deshpande, Naughton — SIGMOD
//! 1997), as recalled in Section 4.1 — and as shown *incorrect* for RDF in
//! Section 4.2.
//!
//! Cells hold partial aggregates; a child node is computed by aggregating a
//! parent's cell values along the dropped dimension. When a fact has
//! several values on the dropped dimension it sits in several parent cells,
//! and its contribution is added once per cell — Lemma 1's double counting.
//! `count(*)`, `count(M)`, `sum(M)` and `avg(M)` are all affected;
//! `min`/`max` happen to commute with the projection and stay correct.
//!
//! This implementation exists as the experimental baseline (and to verify
//! Lemma 1 / Theorem 1 empirically); use [`crate::mvd_cube`] for correct
//! results.

use crate::engine::{run_engine, CubeAlgebra, EngineExec};
use crate::mvdcube::{prepare, MvdCubeOptions};
use crate::result::CubeResult;
use crate::spec::{CubeSpec, MdaKind};
use spade_bitmap::Bitmap;
use spade_storage::FactId;

/// Per-measure partial aggregate (the classical cell payload).
#[derive(Clone, Copy, Debug)]
struct MeasureAccum {
    sum: f64,
    count: f64,
    lo: f64,
    hi: f64,
}

impl MeasureAccum {
    fn empty() -> Self {
        MeasureAccum { sum: 0.0, count: 0.0, lo: f64::INFINITY, hi: f64::NEG_INFINITY }
    }
}

/// A classical cell: partially aggregated values, no fact identity.
#[derive(Clone, Debug)]
pub(crate) struct ArrayCell {
    fact_count: f64,
    measures: Vec<MeasureAccum>,
}

pub(crate) struct ArrayAlgebra<'a, 'b> {
    pub spec: &'b CubeSpec<'a>,
    /// MDA list cached once — `emit` runs per cell.
    pub mdas: Vec<crate::spec::Mda>,
}

impl<'a, 'b> ArrayAlgebra<'a, 'b> {
    pub fn new(spec: &'b CubeSpec<'a>) -> Self {
        ArrayAlgebra { spec, mdas: spec.mdas() }
    }
}

impl<'a, 'b> CubeAlgebra for ArrayAlgebra<'a, 'b> {
    type Cell = ArrayCell;
    /// Classical cells are already aggregated; nothing to precompute.
    type EmitPlan = ();
    type EmitScratch = ();

    fn root_cell(&self, facts: &Bitmap) -> ArrayCell {
        let mut cell = ArrayCell {
            fact_count: 0.0,
            measures: vec![MeasureAccum::empty(); self.spec.measures.len()],
        };
        for fact in facts.iter() {
            let fact = FactId(fact);
            cell.fact_count += 1.0;
            for (mi, m) in self.spec.measures.iter().enumerate() {
                let c = m.preagg.count(fact);
                if c == 0 {
                    continue;
                }
                let acc = &mut cell.measures[mi];
                acc.count += c as f64;
                acc.sum += m.preagg.sum(fact);
                acc.lo = acc.lo.min(m.preagg.min(fact).unwrap());
                acc.hi = acc.hi.max(m.preagg.max(fact).unwrap());
            }
        }
        cell
    }

    /// The incorrect step: aggregates are *added* across parent cells —
    /// "the fact n will be counted twice, instead of just once" (Lemma 1).
    fn merge(&self, into: &mut ArrayCell, from: &ArrayCell) {
        into.fact_count += from.fact_count;
        for (a, b) in into.measures.iter_mut().zip(&from.measures) {
            a.sum += b.sum;
            a.count += b.count;
            a.lo = a.lo.min(b.lo);
            a.hi = a.hi.max(b.hi);
        }
    }

    fn plan_emit(&self, _alive: &[bool]) {}

    fn emit(
        &self,
        cell: &ArrayCell,
        alive: &[bool],
        _plan: &(),
        _scratch: &mut (),
    ) -> Vec<Option<f64>> {
        self.mdas
            .iter()
            .zip(alive)
            .map(|(mda, &is_alive)| {
                if !is_alive {
                    return None;
                }
                match mda.kind {
                    MdaKind::FactCount => Some(cell.fact_count),
                    MdaKind::Measure { measure, agg } => {
                        let acc = &cell.measures[measure];
                        if acc.count == 0.0 {
                            return None;
                        }
                        Some(match agg {
                            spade_storage::AggFn::Count => acc.count,
                            spade_storage::AggFn::Sum => acc.sum,
                            spade_storage::AggFn::Avg => acc.sum / acc.count,
                            spade_storage::AggFn::Min => acc.lo,
                            spade_storage::AggFn::Max => acc.hi,
                        })
                    }
                }
            })
            .collect()
    }
}

/// Evaluates the full lattice with classical ArrayCube semantics.
///
/// Results are correct only for lattice nodes retaining every multi-valued
/// dimension (Theorem 1); the experiments use this to measure baseline
/// errors.
pub fn array_cube(spec: &CubeSpec<'_>, options: &MvdCubeOptions) -> CubeResult {
    let (lattice, translation) = prepare(spec, options, None);
    let algebra = ArrayAlgebra::new(spec);
    run_engine(
        spec,
        &lattice,
        &translation,
        &algebra,
        None,
        EngineExec::from_options(options),
        &spade_parallel::Budget::unlimited(),
        &spade_telemetry::SpanCtx::disabled(),
    )
    .expect("unlimited budget cannot cancel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdcube::fixtures::ceos;
    use crate::spec::MeasureSpec;
    use spade_storage::AggFn;

    fn example3_arraycube() -> CubeResult {
        let data = ceos();
        let spec = CubeSpec::new(
            vec![&data.nationality, &data.gender, &data.area],
            vec![
                MeasureSpec { preagg: &data.net_worth, fns: vec![AggFn::Sum] },
                MeasureSpec { preagg: &data.age, fns: vec![AggFn::Avg, AggFn::Min] },
            ],
            2,
        );
        array_cube(&spec, &MvdCubeOptions::default())
    }

    /// Figure 4's cardinality bug, reproduced exactly: "In A4's result, we
    /// find five CEOs managing Manufacturer companies, whereas there are
    /// only two."
    #[test]
    fn figure4_a4_counts_five_manufacturer_ceos() {
        let result = example3_arraycube();
        let area_node = result.node(0b100).unwrap();
        // Manufacturer code = 2 (sorted labels).
        assert_eq!(area_node.groups[&vec![2]][0], Some(5.0));
    }

    /// "A similar error occurs in A3 where we count three female CEOs."
    #[test]
    fn figure4_a3_counts_three_female_ceos() {
        let result = example3_arraycube();
        let gender_node = result.node(0b010).unwrap();
        assert_eq!(gender_node.groups[&vec![0]][0], Some(3.0));
    }

    /// Variation 1's sum error: Manufacturer = 2.8B + 4·120M.
    #[test]
    fn variation1_sum_error() {
        let result = example3_arraycube();
        let area_node = result.node(0b100).unwrap();
        assert_eq!(area_node.groups[&vec![2]][1], Some(2.8e9 + 4.0 * 1.2e8));
    }

    /// Variation 2's avg error: (47 + 4·66)/5 = 62.2 instead of 56.5.
    #[test]
    fn variation2_avg_error() {
        let result = example3_arraycube();
        let area_node = result.node(0b100).unwrap();
        let avg = area_node.groups[&vec![2]][2].unwrap();
        assert!((avg - 62.2).abs() < 1e-9, "avg {avg}");
    }

    /// min/max survive the classical projection (they commute with it).
    #[test]
    fn min_remains_correct() {
        let result = example3_arraycube();
        let area_node = result.node(0b100).unwrap();
        assert_eq!(area_node.groups[&vec![2]][3], Some(47.0));
    }

    /// Theorem 1 boundary: on single-valued data ArrayCube and MVDCube
    /// agree everywhere.
    #[test]
    fn agrees_with_mvdcube_on_single_valued_data() {
        use spade_storage::{CategoricalColumn, NumericColumn};
        let d1 = CategoricalColumn::from_rows("a", &[vec!["x"], vec!["y"], vec!["x"]]);
        let d2 = CategoricalColumn::from_rows("b", &[vec!["1"], vec![], vec!["2"]]);
        let m =
            NumericColumn::from_rows("v", &[vec![10.0], vec![20.0], vec![30.0]]).preaggregate();
        let spec = CubeSpec::new(
            vec![&d1, &d2],
            vec![MeasureSpec { preagg: &m, fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Count] }],
            3,
        );
        let opts = MvdCubeOptions::default();
        let a = array_cube(&spec, &opts);
        let b = crate::mvd_cube(&spec, &opts);
        for (mask, node) in &b.nodes {
            let other = a.node(*mask).unwrap();
            assert_eq!(node.groups.len(), other.groups.len());
            for (key, vals) in &node.groups {
                let avals = &other.groups[key];
                for (x, y) in vals.iter().zip(avals) {
                    match (x, y) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (a, b) => assert_eq!(a, b),
                    }
                }
            }
        }
    }
}
