//! Early-stop aggregate pruning (Section 5).
//!
//! "We could reduce the effort to compute some aggregates if we can
//! determine (with high probability) that they will not be among the k most
//! interesting ones. … To prune some aggregates, if we find that the
//! upper-bound on the estimate of A's interestingness is lower than the
//! current lower-bound of the k-th best aggregate, we can give up evaluating
//! A. … This procedure terminates once the sample is exhausted or no
//! aggregates have been pruned in a given number of batches."
//!
//! The stratified per-root-group reservoirs collected during Data
//! Translation (see [`crate::translate`]) are projected down the lattice —
//! each node's group sample is the (deduplicated) union of the root-group
//! samples mapping to it, mirroring MVDCube's bitmap propagation — and the
//! per-MDA confidence intervals of Theorem 2 / Appendices B–C drive the
//! pruning loop.

use crate::lattice::Lattice;
use crate::spec::{CubeSpec, MdaKind};
use crate::translate::SampleSet;
use spade_parallel::{Budget, Cancelled};
use spade_stats::ci::EstimatorKind;
use spade_stats::{GroupSample, Interestingness, InterestingnessCi};
use spade_storage::{AggFn, FactId};
use spade_telemetry::SpanCtx;
use std::collections::HashMap;

/// Early-stop tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct EarlyStopConfig {
    /// How many aggregates the user wants (`k`).
    pub k: usize,
    /// The interestingness function the run optimizes.
    pub h: Interestingness,
    /// Confidence level `1 − α` of the pruning intervals.
    pub confidence: f64,
    /// Per-group reservoir capacity (the paper's empirically good value: 60).
    pub sample_size: usize,
    /// Number of batches the sample is consumed in (paper: 2).
    pub batches: usize,
}

impl Default for EarlyStopConfig {
    fn default() -> Self {
        EarlyStopConfig {
            k: 10,
            h: Interestingness::Variance,
            confidence: 0.95,
            sample_size: 60,
            batches: 2,
        }
    }
}

/// What early-stop decided.
#[derive(Clone, Debug)]
pub struct EarlyStopOutcome {
    /// Per lattice node: per-MDA liveness (false = pruned).
    pub alive: HashMap<u32, Vec<bool>>,
    /// Number of pruned `(node, MDA)` aggregates.
    pub pruned: usize,
    /// Total number of `(node, MDA)` aggregates considered.
    pub total: usize,
    /// Batches actually executed.
    pub batches_run: usize,
}

impl EarlyStopOutcome {
    /// Fraction of aggregates pruned (Table 4's `pruned%`).
    pub fn pruned_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.pruned as f64 / self.total as f64
        }
    }
}

/// Per-node sample: group → (sampled facts, estimated group size).
struct NodeSamples {
    groups: Vec<(Vec<u32>, u64)>,
}

/// Estimation for a node only pays off when it has far fewer groups than
/// the CFS has facts: the batch update and interval computation are both
/// `O(#groups)`, which approaches the cost of simply evaluating the node.
/// Nodes above this cap skip estimation and stay alive (never pruned).
fn estimation_group_cap(n_facts: usize) -> usize {
    (n_facts / 8).clamp(16, 4_096)
}

/// Projects the root-group samples onto every lattice node with at most
/// `group_cap` groups (others skip estimation entirely). Each merged child
/// sample is re-capped at the reservoir capacity so per-node estimation
/// work stays `O(#groups · sample_size)` — the sampling analogue of "each
/// node in the MMST receives its own sample" (Section 5.3). Nodes are
/// independent, so the projection fans out over `threads` and merges in
/// node order.
fn project_samples(
    lattice: &Lattice,
    samples: &SampleSet,
    group_cap: usize,
    threads: usize,
    budget: &Budget,
) -> Result<HashMap<u32, NodeSamples>, Cancelled> {
    let strides = crate::translate::strides_for(&lattice.domains);
    let projected = spade_parallel::try_map(lattice.nodes(), threads, |mask| {
        budget.check()?;
        Ok(project_node(lattice, samples, group_cap, &strides, mask).map(|ns| (mask, ns)))
    })?;
    Ok(projected.into_iter().flatten().collect())
}

/// One node's projected sample, or `None` when estimating it would cost
/// more than evaluating it (it then stays alive, never pruned). `strides`
/// are the root cell strides, hoisted out of the per-node fan-out.
fn project_node(
    lattice: &Lattice,
    samples: &SampleSet,
    group_cap: usize,
    strides: &[u64],
    mask: u32,
) -> Option<NodeSamples> {
    let dims = lattice.dims_of(mask);
    // Packed mixed-radix strides over the node's own dims, so projected
    // group keys fit in a u64 (no per-cell allocation).
    let node_domains: Vec<u32> = dims.iter().map(|&d| lattice.domains[d]).collect();
    let node_strides = crate::translate::strides_for(&node_domains);
    // child group key ← root cell index. Groups with a null coordinate
    // along the node's dims are not part of its visible result and are
    // excluded from score estimation.
    let mut grouped: HashMap<u64, (Vec<u32>, u64)> = HashMap::new();
    for (&cell, (facts, seen)) in &samples.groups {
        let mut has_null = false;
        let mut key = 0u64;
        for (i, &d) in dims.iter().enumerate() {
            let code = (cell / strides[d]) % lattice.domains[d] as u64;
            if code == lattice.domains[d] as u64 - 1 {
                has_null = true;
                break;
            }
            key += code * node_strides[i];
        }
        if has_null {
            continue;
        }
        let entry = grouped.entry(key).or_default();
        entry.0.extend_from_slice(facts);
        entry.1 += seen;
        if grouped.len() > group_cap {
            return None; // estimation would cost more than it saves
        }
    }
    // Singleton-ish groups make the per-group variance (and hence the
    // CI) meaningless, and such nodes are as expensive to estimate as
    // to evaluate — skip them (they stay alive).
    let total_sampled: usize = grouped.values().map(|(f, _)| f.len()).sum();
    if grouped.len() < 2 || total_sampled < 2 * grouped.len() {
        return None;
    }
    let groups = grouped
        .into_values()
        .map(|(mut facts, seen)| {
            // A multi-valued fact sampled in several root groups must
            // count once in the consolidated child group (the sampling
            // analogue of the bitmap union). Reservoir contents are
            // uniform, so truncating the merged pool keeps a valid
            // (if slightly clustered) sample.
            facts.sort_unstable();
            facts.dedup();
            facts.truncate(samples.capacity);
            (facts, seen)
        })
        .collect();
    Some(NodeSamples { groups })
}

/// The per-fact sampled value and estimator kind for an MDA.
fn estimator_for(spec: &CubeSpec<'_>, kind: &MdaKind) -> (EstimatorKind, Option<usize>) {
    match kind {
        MdaKind::FactCount => (EstimatorKind::Count, None),
        MdaKind::Measure { measure, agg } => {
            let e = match agg {
                AggFn::Avg => EstimatorKind::Avg,
                AggFn::Sum => EstimatorKind::Sum,
                // count(M) = Σ per-fact value counts → a sum estimator over
                // the per-fact counts.
                AggFn::Count => EstimatorKind::Sum,
                AggFn::Min => EstimatorKind::Min,
                AggFn::Max => EstimatorKind::Max,
            };
            let _ = spec;
            (e, Some(*measure))
        }
    }
}

fn fact_value(spec: &CubeSpec<'_>, measure: usize, agg: AggFn, fact: u32) -> Option<f64> {
    let pre = spec.measures[measure].preagg;
    let f = FactId(fact);
    if pre.count(f) == 0 {
        return None;
    }
    Some(match agg {
        AggFn::Avg => pre.avg(f).unwrap(),
        AggFn::Sum => pre.sum(f),
        AggFn::Count => pre.count(f) as f64,
        AggFn::Min => pre.min(f).unwrap(),
        AggFn::Max => pre.max(f).unwrap(),
    })
}

/// Runs the early-stop pruning loop over the stratified samples.
///
/// Each batch fans the per-node moment updates and interval computations
/// out over `threads` (`0` = all cores, `1` = serial) and aggregates the
/// node-local results **in node order**, so every pruning decision — and
/// therefore the returned liveness map — is bit-identical at any thread
/// count.
pub fn prune(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    samples: &SampleSet,
    config: &EarlyStopConfig,
    threads: usize,
) -> EarlyStopOutcome {
    prune_budgeted(
        spec,
        lattice,
        samples,
        config,
        threads,
        &Budget::unlimited(),
        &SpanCtx::disabled(),
    )
    .expect("unlimited budget cannot cancel")
}

/// [`prune`] under a request [`Budget`]: the budget is polled per node
/// projection and per node-batch shard, and the loop unwinds with
/// [`Cancelled`] once the deadline passes or the request is cancelled.
/// With [`Budget::unlimited`] this is exactly [`prune`] — checks never
/// alter any pruning decision. `ctx` records an `earlystop` span with
/// batch/pruned counts.
#[allow(clippy::too_many_arguments)]
pub fn prune_budgeted(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    samples: &SampleSet,
    config: &EarlyStopConfig,
    threads: usize,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<EarlyStopOutcome, Cancelled> {
    let span = ctx.span("earlystop");
    let mdas = spec.mdas();
    let cap = estimation_group_cap(spec.n_facts);
    let node_samples = project_samples(lattice, samples, cap, threads, budget)?;
    let masks = lattice.nodes();
    let total = masks.len() * mdas.len();

    let mut alive: HashMap<u32, Vec<bool>> =
        masks.iter().map(|&m| (m, vec![true; mdas.len()])).collect();

    // With k ≥ total aggregates nothing can ever be pruned.
    if config.k >= total || config.batches == 0 || config.sample_size == 0 {
        return Ok(EarlyStopOutcome { alive, pruned: 0, total, batches_run: 0 });
    }

    let ci = InterestingnessCi::new(config.h, config.confidence);
    let batch_len = samples.capacity.div_ceil(config.batches).max(1);
    let mut pruned = 0usize;
    let mut batches_run = 0usize;

    // Nodes worth estimating (see `estimation_group_cap`).
    let estimable: Vec<u32> =
        masks.iter().copied().filter(|m| node_samples.contains_key(m)).collect();

    // Per estimable node, per MDA: running per-group moments, extended
    // batch by batch — the incremental estimate update of Section 5.1
    // ("After scanning a batch, we update the estimate"). Groups are
    // aligned with the node's sample-group list; a group with zero observed
    // measure values is skipped at interval time. The vector is aligned
    // with `estimable` so states can round-trip through the ordered
    // fan-out below.
    let mut states: Vec<Vec<Vec<GroupSample>>> = estimable
        .iter()
        .map(|mask| {
            let ns = &node_samples[mask];
            mdas.iter()
                .map(|_| {
                    ns.groups
                        .iter()
                        .map(|(_, seen)| GroupSample {
                            group_size: *seen,
                            ..Default::default()
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    for batch in 0..config.batches {
        budget.check()?;
        let from = (batch * batch_len).min(samples.capacity);
        let cut = ((batch + 1) * batch_len).min(samples.capacity);
        batches_run += 1;

        // —— per-node shards (parallel, single-owner state) ——
        // Each node extends its per-group moments with this batch's slice
        // of sampled facts and computes the intervals of its alive
        // aggregates. `map` returns shards in node order, so the interval
        // list below is identical at every thread count.
        let work: Vec<(u32, Vec<Vec<GroupSample>>)> =
            estimable.iter().copied().zip(std::mem::take(&mut states)).collect();
        let alive_ref = &alive;
        let shards = spade_parallel::try_map(work, threads, |(mask, mut node_states)| {
            budget.check()?;
            let ns = &node_samples[&mask];
            let alive_flags = &alive_ref[&mask];
            let alive_mdas: Vec<usize> = (0..mdas.len())
                .filter(|&mi| {
                    alive_flags[mi] && matches!(mdas[mi].kind, MdaKind::Measure { .. })
                })
                .collect();
            if !alive_mdas.is_empty() {
                for (gi, (facts, _)) in ns.groups.iter().enumerate() {
                    let lo = from.min(facts.len());
                    let hi = cut.min(facts.len());
                    for &fact in &facts[lo..hi] {
                        for &mi in &alive_mdas {
                            let MdaKind::Measure { measure, agg } = mdas[mi].kind else {
                                unreachable!()
                            };
                            if let Some(v) = fact_value(spec, measure, agg, fact) {
                                node_states[mi][gi].moments.push(v);
                            }
                        }
                    }
                }
            }

            // Interval per alive aggregate from the accumulated moments.
            let mut intervals: Vec<(usize, spade_stats::ScoreInterval)> = Vec::new();
            let mut filtered: Vec<GroupSample> = Vec::new();
            for (mi, mda) in mdas.iter().enumerate() {
                if !alive_flags[mi] {
                    continue;
                }
                let (estimator, measure) = estimator_for(spec, &mda.kind);
                let state = &node_states[mi];
                filtered.clear();
                match measure {
                    None => filtered.extend(state.iter().copied()),
                    Some(_) => {
                        filtered.extend(state.iter().filter(|g| g.moments.count() > 0).copied())
                    }
                }
                let bounds = measure.and_then(|m| spec.measures[m].preagg.global_bounds());
                intervals.push((mi, ci.interval(estimator, &filtered, bounds)));
            }
            Ok((node_states, intervals))
        })?;

        // —— deterministic aggregation of the shard-local results ——
        let mut intervals: Vec<(u32, usize, spade_stats::ScoreInterval)> = Vec::new();
        for (&mask, (node_states, node_intervals)) in estimable.iter().zip(shards) {
            states.push(node_states);
            intervals.extend(node_intervals.into_iter().map(|(mi, iv)| (mask, mi, iv)));
        }

        // k-th best lower bound among alive aggregates.
        let mut lowers: Vec<f64> = intervals.iter().map(|(_, _, iv)| iv.lower).collect();
        lowers.sort_by(|a, b| b.total_cmp(a));
        let Some(&kth_lower) = lowers.get(config.k - 1) else { break };

        // Prune: U_A < L_kth ⇒ A cannot (w.h.p.) reach the top-k.
        let mut pruned_this_batch = 0usize;
        for (mask, mi, iv) in &intervals {
            if iv.upper < kth_lower {
                alive.get_mut(mask).unwrap()[*mi] = false;
                pruned_this_batch += 1;
            }
        }
        pruned += pruned_this_batch;
        // "terminates once … no aggregates have been pruned in a given
        // number of batches" (we use: one idle batch ends the loop).
        if pruned_this_batch == 0 {
            break;
        }
    }

    span.attr("batches", batches_run as u64);
    span.attr("pruned", pruned as u64);
    span.attr("aggregates", total as u64);
    Ok(EarlyStopOutcome { alive, pruned, total, batches_run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdcube::{mvd_cube, mvd_cube_with_earlystop, MvdCubeOptions};
    use crate::spec::MeasureSpec;
    use spade_storage::{CategoricalColumn, NumericColumn};

    /// 400 facts, two dimensions; measure `hot` has a huge-variance result
    /// on dim a, measure `flat` is uniform everywhere (prunable).
    fn build() -> (CategoricalColumn, CategoricalColumn, NumericColumn, NumericColumn) {
        let n = 400usize;
        let a = CategoricalColumn::from_rows(
            "a",
            &(0..n).map(|i| vec![["p", "q", "r", "s"][i % 4]]).collect::<Vec<_>>(),
        );
        let b = CategoricalColumn::from_rows(
            "b",
            &(0..n).map(|i| vec![["x", "y"][i % 2]]).collect::<Vec<_>>(),
        );
        let hot = NumericColumn::from_rows(
            "hot",
            &(0..n)
                .map(|i| vec![if i % 4 == 0 { 1000.0 } else { 1.0 } + (i % 7) as f64 * 0.01])
                .collect::<Vec<_>>(),
        );
        let flat = NumericColumn::from_rows(
            "flat",
            &(0..n).map(|i| vec![5.0 + (i % 3) as f64 * 1e-6]).collect::<Vec<_>>(),
        );
        (a, b, hot, flat)
    }

    #[test]
    fn prunes_flat_aggregates_and_keeps_hot_ones() {
        let (a, b, hot, flat) = build();
        let hot_pre = hot.preaggregate();
        let flat_pre = flat.preaggregate();
        let spec = CubeSpec::new(
            vec![&a, &b],
            vec![
                MeasureSpec { preagg: &hot_pre, fns: vec![spade_storage::AggFn::Avg] },
                MeasureSpec { preagg: &flat_pre, fns: vec![spade_storage::AggFn::Avg] },
            ],
            400,
        );
        let config = EarlyStopConfig { k: 2, sample_size: 60, ..Default::default() };
        let (result, outcome) =
            mvd_cube_with_earlystop(&spec, &MvdCubeOptions::default(), &config);
        assert!(outcome.pruned > 0, "expected some pruning");
        assert!(outcome.pruned_fraction() > 0.0);
        // avg(hot) by dim a (mask 0b01) must survive: it is the clear winner.
        let hot_idx = 1; // mdas: count(*), avg(hot), avg(flat)
        assert!(outcome.alive[&0b01][hot_idx], "hot aggregate wrongly pruned");
        let node = result.node(0b01).unwrap();
        assert!(node.groups.values().any(|v| v[hot_idx].is_some()));
    }

    #[test]
    fn earlystop_topk_matches_full_evaluation_here() {
        let (a, b, hot, flat) = build();
        let hot_pre = hot.preaggregate();
        let flat_pre = flat.preaggregate();
        let spec = CubeSpec::new(
            vec![&a, &b],
            vec![
                MeasureSpec { preagg: &hot_pre, fns: vec![spade_storage::AggFn::Avg] },
                MeasureSpec { preagg: &flat_pre, fns: vec![spade_storage::AggFn::Avg] },
            ],
            400,
        );
        let opts = MvdCubeOptions::default();
        let full = mvd_cube(&spec, &opts);
        let top_full = crate::arm::top_k_of_result(&full, Interestingness::Variance, 3);

        let config = EarlyStopConfig { k: 3, ..Default::default() };
        let (pruned_result, _) = mvd_cube_with_earlystop(&spec, &opts, &config);
        let top_es = crate::arm::top_k_of_result(&pruned_result, Interestingness::Variance, 3);

        // Accuracy metric |T ∩ T_es| / |T| (Section 6.4) — here the signal
        // is so strong that accuracy must be 100%.
        let set: std::collections::HashSet<_> = top_full.iter().map(|s| s.id).collect();
        let hits = top_es.iter().filter(|s| set.contains(&s.id)).count();
        assert_eq!(hits, top_full.len());
    }

    #[test]
    fn no_pruning_when_k_covers_everything() {
        let (a, _, hot, _) = build();
        let hot_pre = hot.preaggregate();
        let spec = CubeSpec::new(
            vec![&a],
            vec![MeasureSpec { preagg: &hot_pre, fns: vec![spade_storage::AggFn::Avg] }],
            400,
        );
        let config = EarlyStopConfig { k: 100, ..Default::default() };
        let (_, outcome) = mvd_cube_with_earlystop(&spec, &MvdCubeOptions::default(), &config);
        assert_eq!(outcome.pruned, 0);
        assert_eq!(outcome.batches_run, 0);
    }

    #[test]
    fn pruned_aggregates_are_not_computed() {
        let (a, b, hot, flat) = build();
        let hot_pre = hot.preaggregate();
        let flat_pre = flat.preaggregate();
        let spec = CubeSpec::new(
            vec![&a, &b],
            vec![
                MeasureSpec { preagg: &hot_pre, fns: vec![spade_storage::AggFn::Avg] },
                MeasureSpec { preagg: &flat_pre, fns: vec![spade_storage::AggFn::Avg] },
            ],
            400,
        );
        let config = EarlyStopConfig { k: 1, ..Default::default() };
        let (result, outcome) =
            mvd_cube_with_earlystop(&spec, &MvdCubeOptions::default(), &config);
        for (mask, flags) in &outcome.alive {
            if let Some(node) = result.node(*mask) {
                for values in node.groups.values() {
                    for (mi, v) in values.iter().enumerate() {
                        if !flags[mi] {
                            assert!(v.is_none(), "pruned MDA {mi} of node {mask:b} computed");
                        }
                    }
                }
            }
        }
    }
}
