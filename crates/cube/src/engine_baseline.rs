//! The original serial MVDCube evaluation engine, preserved verbatim as a
//! performance baseline.
//!
//! This is the pre-optimization implementation: cube memory is a
//! triple-nested `HashMap<node, HashMap<region, HashMap<cell, Bitmap>>>`
//! (hashing on every cell touch), parent cells are *cloned* into every MMST
//! child, and measure computation walks the per-fact pre-aggregates one
//! fact at a time. The optimized engine in [`crate::engine`] replaces all
//! three; `BENCH_engine.json` (see `spade-bench`'s `bench_engine` binary)
//! tracks the speedup of the new path against this one, and the
//! property tests use it as a second reference implementation.
//!
//! Do not extend this module — it exists to stay *unchanged*.

use crate::lattice::Lattice;
use crate::result::{CubeResult, NodeResult};
use crate::spec::{CubeSpec, MdaKind};
use crate::translate::{strides_for, Translation};
use spade_bitmap::Bitmap;
use std::collections::HashMap;

/// Per-node geometry: dims, their domains, cell strides, chunk geometry.
struct NodeGeom {
    dims: Vec<usize>,
    domains: Vec<u64>,
    strides: Vec<u64>,
    region_strides: Vec<u64>,
}

impl NodeGeom {
    fn decode(&self, cell_idx: u64) -> Vec<u32> {
        self.strides
            .iter()
            .zip(&self.domains)
            .map(|(&s, &d)| {
                let code = (cell_idx / s) % d;
                if code == d - 1 {
                    crate::result::NULL_CODE
                } else {
                    code as u32
                }
            })
            .collect()
    }
}

struct Projection {
    child_mask: u32,
    cell_d: u64,
    cell_below: u64,
    region_d: u64,
    region_below: u64,
}

fn node_geom(lattice: &Lattice, mask: u32) -> NodeGeom {
    let dims = lattice.dims_of(mask);
    let domains32: Vec<u32> = dims.iter().map(|&i| lattice.domains[i]).collect();
    let n_chunks_all = lattice.n_chunks();
    let chunks: Vec<u32> = dims.iter().map(|&i| n_chunks_all[i]).collect();
    NodeGeom {
        strides: strides_for(&domains32),
        domains: domains32.iter().map(|&d| d as u64).collect(),
        region_strides: strides_for(&chunks),
        dims,
    }
}

#[inline]
fn project(idx: u64, d: u64, below: u64) -> u64 {
    (idx / (d * below)) * below + idx % below
}

/// The historical per-fact measure computation (one pre-aggregate lookup
/// per fact per measure, interleaved).
fn emit_cell(
    spec: &CubeSpec<'_>,
    mdas: &[crate::spec::Mda],
    cell: &Bitmap,
    alive: &[bool],
) -> Vec<Option<f64>> {
    let n_measures = spec.measures.len();
    let mut counts = vec![0u64; n_measures];
    let mut sums = vec![0.0f64; n_measures];
    let mut lows = vec![f64::INFINITY; n_measures];
    let mut highs = vec![f64::NEG_INFINITY; n_measures];
    let mut facts = 0u64;
    let mut needed = vec![false; n_measures];
    for (mda, &is_alive) in mdas.iter().zip(alive) {
        if let (MdaKind::Measure { measure, .. }, true) = (&mda.kind, is_alive) {
            needed[*measure] = true;
        }
    }
    let needed_measures: Vec<usize> = (0..n_measures).filter(|&m| needed[m]).collect();
    for fact in cell.iter() {
        facts += 1;
        if needed_measures.is_empty() {
            continue;
        }
        let fact = spade_storage::FactId(fact);
        for &mi in &needed_measures {
            let m = &spec.measures[mi];
            let c = m.preagg.count(fact);
            if c == 0 {
                continue;
            }
            counts[mi] += c as u64;
            sums[mi] += m.preagg.sum(fact);
            lows[mi] = lows[mi].min(m.preagg.min(fact).unwrap());
            highs[mi] = highs[mi].max(m.preagg.max(fact).unwrap());
        }
    }
    mdas.iter()
        .zip(alive)
        .map(|(mda, &is_alive)| {
            if !is_alive {
                return None;
            }
            match mda.kind {
                MdaKind::FactCount => Some(facts as f64),
                MdaKind::Measure { measure, agg } => {
                    if counts[measure] == 0 {
                        return None;
                    }
                    Some(match agg {
                        spade_storage::AggFn::Count => counts[measure] as f64,
                        spade_storage::AggFn::Sum => sums[measure],
                        spade_storage::AggFn::Avg => sums[measure] / counts[measure] as f64,
                        spade_storage::AggFn::Min => lows[measure],
                        spade_storage::AggFn::Max => highs[measure],
                    })
                }
            }
        })
        .collect()
}

/// Engine state during one evaluation.
struct Engine<'a, 'b> {
    spec: &'a CubeSpec<'b>,
    mdas: Vec<crate::spec::Mda>,
    geoms: HashMap<u32, NodeGeom>,
    projections: HashMap<u32, Vec<Projection>>,
    /// node → region → cell → payload (the nested-HashMap memory).
    memory: HashMap<u32, HashMap<u64, HashMap<u64, Bitmap>>>,
    pending: HashMap<u32, HashMap<u64, u64>>,
    region_totals: HashMap<u32, HashMap<u64, u64>>,
    alive: HashMap<u32, Vec<bool>>,
    keep: HashMap<u32, bool>,
    result: CubeResult,
}

impl<'a, 'b> Engine<'a, 'b> {
    fn flush(&mut self, mask: u32, region: u64, cells: HashMap<u64, Bitmap>) {
        if self.alive[&mask].iter().any(|&a| a) {
            let geom = &self.geoms[&mask];
            let mut emitted: Vec<(Vec<u32>, Vec<Option<f64>>)> =
                Vec::with_capacity(cells.len());
            for (&cell_idx, cell) in &cells {
                let key = geom.decode(cell_idx);
                let values = emit_cell(self.spec, &self.mdas, cell, &self.alive[&mask]);
                emitted.push((key, values));
            }
            let node = self.result.nodes.entry(mask).or_insert_with(|| NodeResult::new(mask));
            for (key, values) in emitted {
                node.groups.insert(key, values);
            }
        }

        let coverage = self.region_totals[&mask][&region];
        let n_projs = self.projections.get(&mask).map_or(0, Vec::len);
        for pi in 0..n_projs {
            let (child, cell_d, cell_below, region_d, region_below) = {
                let p = &self.projections[&mask][pi];
                (p.child_mask, p.cell_d, p.cell_below, p.region_d, p.region_below)
            };
            if !self.keep[&child] {
                continue;
            }
            let child_region = project(region, region_d, region_below);
            let child_mem =
                self.memory.get_mut(&child).unwrap().entry(child_region).or_default();
            for (&cell_idx, cell) in &cells {
                let child_idx = project(cell_idx, cell_d, cell_below);
                match child_mem.get_mut(&child_idx) {
                    Some(existing) => existing.union_with(cell),
                    None => {
                        child_mem.insert(child_idx, cell.clone());
                    }
                }
            }
            let total = self.region_totals[&child][&child_region];
            let pending =
                self.pending.get_mut(&child).unwrap().entry(child_region).or_insert(total);
            *pending = pending.saturating_sub(coverage);
            if *pending == 0 {
                self.pending.get_mut(&child).unwrap().remove(&child_region);
                let child_cells = self
                    .memory
                    .get_mut(&child)
                    .unwrap()
                    .remove(&child_region)
                    .unwrap_or_default();
                self.flush(child, child_region, child_cells);
            }
        }
    }
}

/// Runs the original nested-HashMap engine over a translation (MVDCube
/// algebra only). Baseline for benchmarks and property tests.
pub fn run_engine_baseline(
    spec: &CubeSpec<'_>,
    lattice: &Lattice,
    translation: &Translation,
    alive: Option<&HashMap<u32, Vec<bool>>>,
) -> CubeResult {
    let mmst = lattice.mmst();
    let mdas = spec.mdas();
    let n_mdas = mdas.len();
    let labels = mdas.iter().map(|m| m.label.clone()).collect();

    let mut geoms = HashMap::new();
    for mask in lattice.nodes() {
        geoms.insert(mask, node_geom(lattice, mask));
    }
    let n_chunks = lattice.n_chunks();
    let mut projections: HashMap<u32, Vec<Projection>> = HashMap::new();
    for mask in lattice.nodes() {
        let parent_dims = &geoms[&mask].dims;
        let projs: Vec<Projection> = mmst
            .children_of(mask)
            .iter()
            .map(|&child| {
                let dropped = mmst.parent[&child].1;
                let pos = parent_dims.iter().position(|&d| d == dropped).unwrap();
                let cell_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| lattice.domains[i] as u64).product();
                let region_below: u64 =
                    parent_dims[pos + 1..].iter().map(|&i| n_chunks[i] as u64).product();
                Projection {
                    child_mask: child,
                    cell_d: lattice.domains[dropped] as u64,
                    cell_below,
                    region_d: n_chunks[dropped] as u64,
                    region_below,
                }
            })
            .collect();
        if !projs.is_empty() {
            projections.insert(mask, projs);
        }
    }

    let alive_map: HashMap<u32, Vec<bool>> = lattice
        .nodes()
        .iter()
        .map(|&m| {
            let flags =
                alive.and_then(|a| a.get(&m).cloned()).unwrap_or_else(|| vec![true; n_mdas]);
            assert_eq!(flags.len(), n_mdas);
            (m, flags)
        })
        .collect();
    let mut keep: HashMap<u32, bool> = HashMap::new();
    for &mask in mmst.topological().iter().rev() {
        let self_alive = alive_map[&mask].iter().any(|&a| a);
        let child_alive = mmst.children_of(mask).iter().any(|c| keep[c]);
        keep.insert(mask, self_alive || child_alive);
    }

    let root = lattice.root_mask();
    let region_strides = strides_for(&n_chunks);
    let mut region_totals: HashMap<u32, HashMap<u64, u64>> =
        lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect();
    for partition in &translation.partitions {
        for mask in lattice.nodes() {
            let geom = &geoms[&mask];
            let region: u64 = geom
                .dims
                .iter()
                .zip(&geom.region_strides)
                .map(|(&d, &s)| partition.coords[d] as u64 * s)
                .sum();
            *region_totals.get_mut(&mask).unwrap().entry(region).or_insert(0) += 1;
        }
    }
    let mut engine = Engine {
        spec,
        mdas,
        memory: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        pending: lattice.nodes().iter().map(|&m| (m, HashMap::new())).collect(),
        geoms,
        projections,
        alive: alive_map,
        keep,
        region_totals,
        result: CubeResult::new(labels),
    };
    if !engine.keep[&root] {
        return engine.result;
    }
    for partition in &translation.partitions {
        let cells: HashMap<u64, Bitmap> =
            partition.cells.iter().map(|(idx, facts)| (*idx, facts.clone())).collect();
        let region: u64 =
            partition.coords.iter().zip(&region_strides).map(|(&c, &s)| c as u64 * s).sum();
        engine.flush(root, region, cells);
    }
    engine.result
}

/// Full-lattice MVDCube evaluation on the baseline engine.
pub fn mvd_cube_baseline(
    spec: &CubeSpec<'_>,
    options: &crate::mvdcube::MvdCubeOptions,
) -> CubeResult {
    let (lattice, translation) = crate::mvdcube::prepare(spec, options, None);
    run_engine_baseline(spec, &lattice, &translation, None)
}
