//! The dimension lattice and the Minimum Memory Spanning Tree (MMST).
//!
//! Given `N` dimensions, the lattice has `2^N` nodes, one per dimension
//! subset (Figure 1(c)); node masks use bit `i` for dimension `i`. ArrayCube
//! evaluates all nodes in one pass by choosing, for each non-root node, a
//! parent to compute it from, "hence forming a spanning tree of the lattice.
//! The memory needed … depends on the ordering of dimensions, their numbers
//! of distinct values, and the partition size. ArrayCube chooses the tree
//! that minimizes the overall memory needed; it is called the MMST"
//! (Section 4.1).
//!
//! The memory charged to a node with dimension set `S`, computed from the
//! parent `S ∪ {j}`, is the classical ArrayCube quantity
//!
//! ```text
//! mem(S, j) = Π_{i ∈ S, i < j} |D_i|  ×  Π_{i ∈ S, i > j} c_i
//! ```
//!
//! (`|D_i|` = full domain size including the null slot, `c_i` = distinct
//! values per partition along dimension `i`): dimensions *before* the
//! dropped axis must be held at full extent, those after only at chunk
//! granularity. The root holds one partition: `Π c_i` cells.
//!
//! This module also exposes the [`Theorem 1`](Lattice::max_correct_nodes)
//! quantities: with `K` multi-valued dimensions, at most `2^{N−K}` lattice
//! nodes can be computed correctly from parent results.

use std::collections::HashMap;

/// The lattice over `N` dimensions with their array geometry.
#[derive(Clone, Debug)]
pub struct Lattice {
    /// Domain size per dimension (distinct values + null).
    pub domains: Vec<u32>,
    /// Partition (chunk) size per dimension, `1 ≤ c_i ≤ |D_i|`.
    pub chunks: Vec<u32>,
}

impl Lattice {
    /// Builds a lattice; chunk sizes are clamped into `[1, |D_i|]`.
    pub fn new(domains: Vec<u32>, chunks: Vec<u32>) -> Self {
        assert_eq!(domains.len(), chunks.len());
        assert!(!domains.is_empty() && domains.len() <= 20, "1..=20 dimensions supported");
        let chunks = domains.iter().zip(chunks).map(|(&d, c)| c.clamp(1, d.max(1))).collect();
        Lattice { domains, chunks }
    }

    /// Number of dimensions `N`.
    pub fn n_dims(&self) -> usize {
        self.domains.len()
    }

    /// The root node mask (all dimensions).
    pub fn root_mask(&self) -> u32 {
        (1u32 << self.n_dims()) - 1
    }

    /// All `2^N` node masks, root first (descending popcount, then value).
    pub fn nodes(&self) -> Vec<u32> {
        let mut masks: Vec<u32> = (0..=self.root_mask()).collect();
        masks.sort_by_key(|m| (std::cmp::Reverse(m.count_ones()), *m));
        masks
    }

    /// Number of partition chunks along each dimension.
    pub fn n_chunks(&self) -> Vec<u32> {
        self.domains.iter().zip(&self.chunks).map(|(&d, &c)| d.div_ceil(c)).collect()
    }

    /// Ascending dimension indexes of a mask.
    pub fn dims_of(&self, mask: u32) -> Vec<usize> {
        (0..self.n_dims()).filter(|i| mask & (1 << i) != 0).collect()
    }

    /// Memory (in cells) to compute node `mask` from the parent that drops
    /// dimension `dropped` — the ArrayCube formula above.
    pub fn memory_from(&self, mask: u32, dropped: usize) -> u128 {
        debug_assert_eq!(mask & (1 << dropped), 0, "dropped dim must be outside the node");
        let mut mem: u128 = 1;
        for i in self.dims_of(mask) {
            mem *= if i < dropped { self.domains[i] as u128 } else { self.chunks[i] as u128 };
        }
        mem
    }

    /// Memory of the root: one partition's worth of cells, `Π c_i`.
    pub fn root_memory(&self) -> u128 {
        self.chunks.iter().map(|&c| c as u128).product()
    }

    /// Builds the MMST: each non-root node picks the parent minimizing its
    /// memory charge (ties broken toward the smallest dropped dimension).
    pub fn mmst(&self) -> Mmst {
        let root = self.root_mask();
        let mut parent = HashMap::new();
        let mut children: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut memory = HashMap::new();
        memory.insert(root, self.root_memory());
        for mask in self.nodes() {
            if mask == root {
                continue;
            }
            let (best_drop, best_mem) = (0..self.n_dims())
                .filter(|&j| mask & (1 << j) == 0)
                .map(|j| (j, self.memory_from(mask, j)))
                .min_by_key(|&(j, m)| (m, j))
                .expect("non-root node always has a parent");
            let parent_mask = mask | (1 << best_drop);
            parent.insert(mask, (parent_mask, best_drop));
            children.entry(parent_mask).or_default().push(mask);
            memory.insert(mask, best_mem);
        }
        for kids in children.values_mut() {
            kids.sort_unstable();
        }
        Mmst { root, parent, children, memory }
    }

    /// Theorem 1(ii): the maximum number of lattice nodes computable
    /// correctly from parent results when `K = |MD|` dimensions are
    /// multi-valued is `2^{N−K}`.
    pub fn max_correct_nodes(&self, multi_valued: &[usize]) -> u64 {
        1u64 << (self.n_dims() - multi_valued.len())
    }

    /// Whether node `mask` retains *all* multi-valued dimensions — the
    /// Theorem 1 characterization of nodes a one-pass parent-based
    /// computation can get right.
    pub fn retains_all_multi_valued(&self, mask: u32, multi_valued: &[usize]) -> bool {
        multi_valued.iter().all(|&i| mask & (1 << i) != 0)
    }
}

/// The Minimum Memory Spanning Tree over the lattice.
#[derive(Clone, Debug)]
pub struct Mmst {
    /// Root mask (all dimensions).
    pub root: u32,
    /// `child mask → (parent mask, dropped dimension)`.
    pub parent: HashMap<u32, (u32, usize)>,
    /// `parent mask → child masks` (sorted).
    pub children: HashMap<u32, Vec<u32>>,
    /// Per-node memory charge in cells.
    pub memory: HashMap<u32, u128>,
}

impl Mmst {
    /// Children of a node in the tree.
    pub fn children_of(&self, mask: u32) -> &[u32] {
        self.children.get(&mask).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total memory (cells) across all nodes — what ArrayCube minimizes.
    pub fn total_memory(&self) -> u128 {
        self.memory.values().sum()
    }

    /// Masks in top-down (parents before children) order.
    pub fn topological(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.memory.len());
        let mut stack = vec![self.root];
        while let Some(mask) = stack.pop() {
            order.push(mask);
            stack.extend_from_slice(self.children_of(mask));
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3's geometry: nationality |5|, gender |2|, company/area |4|
    /// (ignoring nulls for this test), 2 distinct values per partition.
    fn example3_lattice() -> Lattice {
        Lattice::new(vec![5, 2, 4], vec![2, 2, 2])
    }

    #[test]
    fn lattice_has_2n_nodes() {
        let l = example3_lattice();
        assert_eq!(l.nodes().len(), 8);
        assert_eq!(l.root_mask(), 0b111);
        assert_eq!(l.nodes()[0], 0b111); // root first
        assert_eq!(*l.nodes().last().unwrap(), 0); // grand total last
    }

    #[test]
    fn memory_formula_matches_hand_computation() {
        let l = example3_lattice();
        // Node {gender, area} = dims {1,2}, parent drops dim 0 (nationality):
        // both dims are after the dropped axis → c₁·c₂ = 4 cells.
        assert_eq!(l.memory_from(0b110, 0), 4);
        // Node {nationality, gender} = dims {0,1}, parent drops dim 2:
        // both before the dropped axis → D₀·D₁ = 10 cells.
        assert_eq!(l.memory_from(0b011, 2), 10);
        // Node {nationality, area} = dims {0,2}, parent drops dim 1 (gender):
        // nationality before (D₀=5), area after (c₂=2) → 10.
        assert_eq!(l.memory_from(0b101, 1), 10);
    }

    #[test]
    fn mmst_prefers_cheapest_parent() {
        let l = example3_lattice();
        let mmst = l.mmst();
        // {gender} (mask 0b010) can be computed by dropping nationality
        // (mem = c₁ = 2) or area (mem = D₁ = 2): tie → smallest dim (0).
        assert_eq!(mmst.parent[&0b010], (0b011, 0));
        // {area} (mask 0b100): dropping dim 0 gives c₂=2, dropping dim 1
        // gives c₂=2 (area still after dim 1): tie → dim 0.
        assert_eq!(mmst.parent[&0b100], (0b101, 0));
        // Every non-root node has a parent with exactly one more dim.
        for mask in l.nodes() {
            if mask != l.root_mask() {
                let (p, j) = mmst.parent[&mask];
                assert_eq!(p, mask | (1 << j));
                assert_eq!(p.count_ones(), mask.count_ones() + 1);
            }
        }
    }

    #[test]
    fn mmst_memory_is_minimal_among_spanning_choices() {
        // Brute-force all parent choices on a 3-dim lattice and check the
        // greedy per-node argmin equals the global minimum (parent choices
        // are independent across nodes, so per-node argmin is optimal).
        let l = Lattice::new(vec![7, 3, 9], vec![3, 2, 4]);
        let mmst = l.mmst();
        for mask in l.nodes() {
            if mask == l.root_mask() {
                continue;
            }
            let best = (0..3)
                .filter(|&j| mask & (1 << j) == 0)
                .map(|j| l.memory_from(mask, j))
                .min()
                .unwrap();
            assert_eq!(mmst.memory[&mask], best, "node {mask:b}");
        }
    }

    #[test]
    fn paper_memory_bound_holds_for_uniform_dims() {
        // "Assuming N dimensions with d distinct values each and c distinct
        // values per partition, the MMST uses at most
        // M_T = c^N + (d+1+c)^{N−1} array cells" (Section 4.3, after [49]).
        // Our lattice additionally carries the grand-total (apex) node,
        // which holds exactly one cell, hence the +1.
        for (n, d, c) in [(2usize, 10u32, 3u32), (3, 8, 2), (4, 5, 2)] {
            let l = Lattice::new(vec![d + 1; n], vec![c; n]); // +1 = null slot
            let total = l.mmst().total_memory();
            let bound = (c as u128).pow(n as u32) + ((d + 1 + c) as u128).pow(n as u32 - 1) + 1;
            assert!(total <= bound, "N={n} d={d} c={c}: {total} > {bound}");
        }
    }

    #[test]
    fn topological_order_is_parent_first() {
        let l = example3_lattice();
        let mmst = l.mmst();
        let order = mmst.topological();
        assert_eq!(order.len(), 8);
        let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        for (&child, &(parent, _)) in &mmst.parent {
            assert!(pos[&parent] < pos[&child]);
        }
    }

    #[test]
    fn theorem1_correct_node_budget() {
        let l = example3_lattice();
        // All three dims multi-valued → only the root (2^0) is safe.
        assert_eq!(l.max_correct_nodes(&[0, 1, 2]), 1);
        // One multi-valued dim → half the lattice.
        assert_eq!(l.max_correct_nodes(&[1]), 4);
        assert!(l.retains_all_multi_valued(0b111, &[1]));
        assert!(l.retains_all_multi_valued(0b011, &[1]));
        assert!(!l.retains_all_multi_valued(0b101, &[1]));
        // The count of retaining nodes equals 2^{N-K}.
        let retaining =
            l.nodes().iter().filter(|&&m| l.retains_all_multi_valued(m, &[1])).count() as u64;
        assert_eq!(retaining, l.max_correct_nodes(&[1]));
    }

    #[test]
    fn chunk_counts() {
        let l = example3_lattice();
        assert_eq!(l.n_chunks(), vec![3, 1, 2]);
        assert_eq!(l.root_memory(), 8);
    }
}
