//! MVDCube — Multi-Valued Data Cube (Section 4.3, Algorithm 1).
//!
//! The first correct and efficient one-pass lattice evaluation for RDF
//! MDAs. Cube cells hold Roaring bitmaps of fact IDs; as a dimension is
//! projected away from parent to child, bitmaps are unioned, so "if a fact
//! has multiple values of the dimension, it belongs to different cells in
//! the parent node, but will be consolidated in the same cell in the child
//! node". Measures are only computed when a node's memory region is flushed,
//! by joining each cell's bitmap with the per-fact pre-aggregated measures
//! (`⊗`), which are ordered by fact ID like the bitmaps.

use crate::engine::{run_engine, CellStorePolicy, CubeAlgebra, EngineExec};
use crate::lattice::Lattice;
use crate::result::CubeResult;
use crate::spec::{CubeSpec, MdaKind};
use crate::translate::Translation;
use spade_bitmap::Bitmap;
use spade_parallel::{Budget, Cancelled};
use spade_storage::MeasureTotals;
use spade_telemetry::SpanCtx;
use std::collections::HashMap;

/// Tuning knobs for an MVDCube run.
#[derive(Clone, Copy, Debug)]
pub struct MvdCubeOptions {
    /// Distinct values per partition along every dimension; `None` picks
    /// `max(1, ⌈|D_i|/4⌉)` (≤ 4 chunks per dimension).
    pub chunk_size: Option<u32>,
    /// Seed for the (optional) early-stop reservoir sampling.
    pub seed: u64,
    /// Dense/sparse cell storage selection (see [`CellStorePolicy`]).
    pub store_policy: CellStorePolicy,
    /// Worker threads for the region-sharded engine *within this one
    /// lattice* (`0` = all cores, `1` = serial). A pure latency knob:
    /// MVDCube results are plan-invariant (see the engine module docs), so
    /// every value yields bit-identical results.
    pub threads: usize,
    /// Target shard weight override for the region-sharded executor
    /// (`None` = auto); exposed for tests and benchmarks so equivalence
    /// properties can sweep shard granularities.
    pub shard_weight: Option<u64>,
}

impl Default for MvdCubeOptions {
    fn default() -> Self {
        MvdCubeOptions {
            chunk_size: None,
            seed: 0xC0FFEE,
            store_policy: CellStorePolicy::Auto,
            threads: 1,
            shard_weight: None,
        }
    }
}

/// Per-dimension chunk sizes for a spec under the given options.
///
/// With `chunk_size: None`, small fact sets get a single partition (the
/// whole array fits in memory and the flush bookkeeping would dominate)
/// while large ones are split into ≤ 4 chunks per dimension, matching the
/// paper's memory-bounded operation.
pub fn chunk_sizes(domains: &[u32], options: &MvdCubeOptions, n_facts: usize) -> Vec<u32> {
    domains
        .iter()
        .map(|&d| {
            let auto = if n_facts < 200_000 { d.max(1) } else { d.div_ceil(4) };
            options.chunk_size.unwrap_or(auto).clamp(1, d.max(1))
        })
        .collect()
}

/// The MVD algebra: cells are fact sets; union consolidates facts.
pub(crate) struct MvdAlgebra<'a, 'b> {
    pub spec: &'b CubeSpec<'a>,
    /// MDA list cached once — `emit` runs per cell.
    pub mdas: Vec<crate::spec::Mda>,
}

impl<'a, 'b> MvdAlgebra<'a, 'b> {
    pub fn new(spec: &'b CubeSpec<'a>) -> Self {
        MvdAlgebra { spec, mdas: spec.mdas() }
    }
}

/// Per-node precomputed emit state: which measures any live MDA needs.
/// Computed once per node (not per cell, let alone per fact).
pub(crate) struct MvdEmitPlan {
    /// Measure indexes with at least one live MDA — the only ones
    /// accumulated; this is where early-stop's pruning actually saves work.
    needed_measures: Vec<usize>,
}

/// Reusable emit buffers: the decoded fact list and per-measure totals.
#[derive(Default)]
pub(crate) struct MvdEmitScratch {
    facts: Vec<u32>,
    totals: Vec<MeasureTotals>,
}

impl<'a, 'b> CubeAlgebra for MvdAlgebra<'a, 'b> {
    type Cell = Bitmap;
    type EmitPlan = MvdEmitPlan;
    type EmitScratch = MvdEmitScratch;

    fn root_cell(&self, facts: &Bitmap) -> Bitmap {
        facts.clone()
    }

    fn merge(&self, into: &mut Bitmap, from: &Bitmap) {
        into.union_with(from);
    }

    /// Fan-in fast path: one k-way union instead of pairwise re-merges
    /// (set union is associative and commutative, so the result is exactly
    /// the folded union).
    fn merge_run(&self, into: &mut Bitmap, from: &[&Bitmap]) {
        into.union_with_all(from);
    }

    fn plan_emit(&self, alive: &[bool]) -> MvdEmitPlan {
        let n_measures = self.spec.measures.len();
        let mut needed = vec![false; n_measures];
        for (mda, &is_alive) in self.mdas.iter().zip(alive) {
            if let (MdaKind::Measure { measure, .. }, true) = (&mda.kind, is_alive) {
                needed[*measure] = true;
            }
        }
        MvdEmitPlan { needed_measures: (0..n_measures).filter(|&m| needed[m]).collect() }
    }

    fn emit(
        &self,
        cell: &Bitmap,
        alive: &[bool],
        plan: &MvdEmitPlan,
        scratch: &mut MvdEmitScratch,
    ) -> Vec<Option<f64>> {
        // Measure computation is a batched bitmap-to-CSR join: the cell's
        // bitmap is decoded once (container-at-a-time) into a reused fact
        // buffer, then each needed measure's pre-aggregated
        // struct-of-arrays columns are scanned contiguously in one pass
        // ("measure computation … can aggregate different measures
        // simultaneously", Section 4.3 (b) — here measure-major so each
        // column is walked sequentially). Count-only cells skip the join
        // entirely; nothing is allocated per cell and nothing panics on
        // facts without a value (they simply contribute nothing).
        let facts = if plan.needed_measures.is_empty() {
            cell.cardinality()
        } else {
            scratch.facts.clear();
            cell.decode_into(&mut scratch.facts);
            scratch.totals.clear();
            scratch.totals.resize(self.spec.measures.len(), MeasureTotals::default());
            for &mi in &plan.needed_measures {
                scratch.totals[mi] =
                    self.spec.measures[mi].preagg.accumulate(scratch.facts.iter().copied());
            }
            scratch.facts.len() as u64
        };
        self.mdas
            .iter()
            .zip(alive)
            .map(|(mda, &is_alive)| {
                if !is_alive {
                    return None;
                }
                match mda.kind {
                    MdaKind::FactCount => Some(facts as f64),
                    MdaKind::Measure { measure, agg } => {
                        let t = scratch.totals[measure];
                        if t.count == 0 {
                            return None;
                        }
                        Some(match agg {
                            spade_storage::AggFn::Count => t.count as f64,
                            spade_storage::AggFn::Sum => t.sum,
                            spade_storage::AggFn::Avg => t.sum / t.count as f64,
                            spade_storage::AggFn::Min => t.min,
                            spade_storage::AggFn::Max => t.max,
                        })
                    }
                }
            })
            .collect()
    }
}

/// Builds the lattice and translation for a spec (shared with baselines and
/// the pipeline so comparisons and benchmarks use identical layouts).
pub fn prepare(
    spec: &CubeSpec<'_>,
    options: &MvdCubeOptions,
    sample_capacity: Option<usize>,
) -> (Lattice, Translation) {
    prepare_budgeted(spec, options, sample_capacity, &Budget::unlimited(), &SpanCtx::disabled())
        .expect("unlimited budget cannot cancel")
}

/// [`prepare`] under a request [`Budget`]: translation fans out over
/// `options.threads` and polls the budget per work item, so a cancelled
/// request unwinds during translation instead of running it to completion.
/// `ctx` records a `translate` span with cell/fact counts.
pub fn prepare_budgeted(
    spec: &CubeSpec<'_>,
    options: &MvdCubeOptions,
    sample_capacity: Option<usize>,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<(Lattice, Translation), Cancelled> {
    let domains = spec.domain_sizes();
    let chunks = chunk_sizes(&domains, options, spec.n_facts);
    let lattice = Lattice::new(domains, chunks);
    let translation = crate::translate::translate_budgeted(
        spec,
        &lattice,
        sample_capacity,
        options.seed,
        options.threads,
        budget,
        ctx,
    )?;
    Ok((lattice, translation))
}

/// Evaluates the full lattice with MVDCube.
pub fn mvd_cube(spec: &CubeSpec<'_>, options: &MvdCubeOptions) -> CubeResult {
    let (lattice, translation) = prepare(spec, options, None);
    let algebra = MvdAlgebra::new(spec);
    run_engine(
        spec,
        &lattice,
        &translation,
        &algebra,
        None,
        EngineExec::from_options(options),
        &Budget::unlimited(),
        &SpanCtx::disabled(),
    )
    .expect("unlimited budget cannot cancel")
}

/// Evaluates with a per-node MDA liveness map (early-stop output): dead
/// MDAs are not computed, and MMST subtrees with no live descendant are not
/// even propagated into.
pub fn mvd_cube_pruned(
    spec: &CubeSpec<'_>,
    options: &MvdCubeOptions,
    lattice: &Lattice,
    translation: &Translation,
    alive: &HashMap<u32, Vec<bool>>,
) -> CubeResult {
    mvd_cube_pruned_budgeted(
        spec,
        options,
        lattice,
        translation,
        alive,
        &Budget::unlimited(),
        &SpanCtx::disabled(),
    )
    .expect("unlimited budget cannot cancel")
}

/// [`mvd_cube_pruned`] under a request [`Budget`]: the engine polls the
/// budget between region flushes and merge/emit tasks and unwinds with
/// [`Cancelled`] in bounded time once the deadline passes. Checks never
/// alter the computation, so a completed run is bit-identical to
/// [`mvd_cube_pruned`]. `ctx` records per-shard child spans (see the
/// engine module docs).
#[allow(clippy::too_many_arguments)]
pub fn mvd_cube_pruned_budgeted(
    spec: &CubeSpec<'_>,
    options: &MvdCubeOptions,
    lattice: &Lattice,
    translation: &Translation,
    alive: &HashMap<u32, Vec<bool>>,
    budget: &Budget,
    ctx: &SpanCtx,
) -> Result<CubeResult, Cancelled> {
    let algebra = MvdAlgebra::new(spec);
    run_engine(
        spec,
        lattice,
        translation,
        &algebra,
        Some(alive),
        EngineExec::from_options(options),
        budget,
        ctx,
    )
}

/// Runs early-stop pruning and then evaluates the surviving MDAs — the
/// integration described in Section 5.3. Both the pruning loop and the
/// evaluation fan out over `options.threads`.
pub fn mvd_cube_with_earlystop(
    spec: &CubeSpec<'_>,
    options: &MvdCubeOptions,
    config: &crate::earlystop::EarlyStopConfig,
) -> (CubeResult, crate::earlystop::EarlyStopOutcome) {
    let (lattice, translation) = prepare(spec, options, Some(config.sample_size));
    let samples = translation.samples.clone().expect("sampling was enabled");
    let outcome = crate::earlystop::prune(spec, &lattice, &samples, config, options.threads);
    let result = mvd_cube_pruned(spec, options, &lattice, &translation, &outcome.alive);
    (result, outcome)
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! The running example of Figures 1 and 4: Dos Santos (fact 0) and
    //! Ghosn (fact 1), with the exact dimensions/measures of Example 3 and
    //! Variations 1–2.

    use spade_storage::{CategoricalColumn, NumericColumn, PreAggregated};

    pub struct CeosExample {
        pub nationality: CategoricalColumn,
        pub gender: CategoricalColumn,
        pub area: CategoricalColumn,
        pub net_worth: PreAggregated,
        pub age: PreAggregated,
    }

    pub fn ceos() -> CeosExample {
        CeosExample {
            nationality: CategoricalColumn::from_rows(
                "nationality",
                &[vec!["Angola"], vec!["Brazil", "France", "Lebanon", "Nigeria"]],
            ),
            gender: CategoricalColumn::from_rows("gender", &[vec!["Female"], vec![]]),
            area: CategoricalColumn::from_rows(
                "company/area",
                &[
                    vec!["Diamond", "Manufacturer", "Natural gas"],
                    vec!["Automotive", "Manufacturer"],
                ],
            ),
            net_worth: NumericColumn::from_rows("netWorth", &[vec![2.8e9], vec![1.2e8]])
                .preaggregate(),
            age: NumericColumn::from_rows("age", &[vec![47.0], vec![66.0]]).preaggregate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::ceos;
    use super::*;
    use crate::spec::MeasureSpec;
    use spade_storage::AggFn;

    /// Example 3's lattice: D = {nationality, gender, company/area} with
    /// count(*), plus Variation 1 (sum netWorth) and Variation 2 (avg age).
    fn example3_result() -> CubeResult {
        let data = ceos();
        let spec = CubeSpec::new(
            vec![&data.nationality, &data.gender, &data.area],
            vec![
                MeasureSpec { preagg: &data.net_worth, fns: vec![AggFn::Sum] },
                MeasureSpec { preagg: &data.age, fns: vec![AggFn::Avg] },
            ],
            2,
        );
        mvd_cube(&spec, &MvdCubeOptions::default())
    }

    /// Figure 4's A1: the root has exactly the 11 tuples t1–t11, all with
    /// count(*) = 1.
    #[test]
    fn figure4_root_has_eleven_singleton_groups() {
        let result = example3_result();
        let root = result.node(0b111).unwrap();
        assert_eq!(root.group_count(), 11);
        for values in root.groups.values() {
            assert_eq!(values[0], Some(1.0));
        }
    }

    /// Figure 4's A4 (count of CEOs by company/area), *correct* semantics:
    /// Manufacturer counts 2 CEOs, not the erroneous 5.
    #[test]
    fn example3_area_counts_distinct_ceos() {
        let result = example3_result();
        // dims order: nationality(0), gender(1), area(2) → area alone = 0b100.
        let area_node = result.node(0b100).unwrap();
        // area labels sorted: Automotive(0), Diamond(1), Manufacturer(2),
        // Natural gas(3), null(4).
        let counts: Vec<(u32, f64)> =
            area_node.groups.iter().map(|(k, v)| (k[0], v[0].unwrap())).collect();
        let get = |code: u32| counts.iter().find(|(c, _)| *c == code).map(|(_, v)| *v);
        assert_eq!(get(0), Some(1.0)); // Automotive: Ghosn
        assert_eq!(get(1), Some(1.0)); // Diamond: Dos Santos
        assert_eq!(get(2), Some(2.0)); // Manufacturer: both — not 5!
        assert_eq!(get(3), Some(1.0)); // Natural gas
        assert_eq!(get(4), None); // no CEO without an area
    }

    /// Figure 4's A3 (count by gender): Female counts 1 CEO, not 3; Ghosn's
    /// null gender is kept internally (tuples t4–t11 semantics) but is not
    /// part of the visible result.
    #[test]
    fn example3_gender_counts() {
        use crate::result::NULL_CODE;
        let result = example3_result();
        let gender_node = result.node(0b010).unwrap();
        // gender labels: Female(0); Ghosn's missing gender → null group.
        assert_eq!(gender_node.groups[&vec![0]][0], Some(1.0));
        assert_eq!(gender_node.groups[&vec![NULL_CODE]][0], Some(1.0));
        assert_eq!(gender_node.visible_group_count(), 1);
        assert_eq!(gender_node.mda_values(0), vec![1.0]);
    }

    /// Variation 1: sum of netWorth by company/area. Each CEO contributes
    /// exactly once: Manufacturer = 2.8B + 120M (not 2.8B + 4·120M).
    #[test]
    fn variation1_sum_netweorth_by_area() {
        let result = example3_result();
        let area_node = result.node(0b100).unwrap();
        let manufacturer = &area_node.groups[&vec![2]];
        assert_eq!(manufacturer[1], Some(2.8e9 + 1.2e8));
    }

    /// Variation 2: avg age by company/area over Manufacturer =
    /// (47+66)/2 = 56.5 (not (47+4·66)/5).
    #[test]
    fn variation2_avg_age_by_area() {
        let result = example3_result();
        let area_node = result.node(0b100).unwrap();
        let manufacturer = &area_node.groups[&vec![2]];
        assert_eq!(manufacturer[2], Some(56.5));
    }

    /// The grand total (mask 0) counts both CEOs once.
    #[test]
    fn grand_total_counts_two_ceos() {
        let result = example3_result();
        let total = result.node(0).unwrap();
        assert_eq!(total.group_count(), 1);
        let values = &total.groups[&vec![]];
        assert_eq!(values[0], Some(2.0));
        assert_eq!(values[1], Some(2.8e9 + 1.2e8));
        assert_eq!(values[2], Some(56.5));
    }

    /// Example 1 (Section 2): "the result for Example 1 is
    /// {(Angola, $2.8B)}, due to n1, whereas n2 does not contribute to the
    /// result as it lacks the countryOfOrigin dimension."
    #[test]
    fn example1_missing_dimension() {
        let data = ceos();
        let country = spade_storage::CategoricalColumn::from_rows(
            "countryOfOrigin",
            &[vec!["Angola"], vec![]],
        );
        let spec = CubeSpec::new(
            vec![&country],
            vec![MeasureSpec { preagg: &data.net_worth, fns: vec![AggFn::Sum] }],
            2,
        );
        let result = mvd_cube(&spec, &MvdCubeOptions::default());
        let node = result.node(0b1).unwrap();
        assert_eq!(node.groups[&vec![0]][1], Some(2.8e9));
        // The visible result is exactly {(Angola, $2.8B)}.
        assert_eq!(node.mda_values(1), vec![2.8e9]);
        assert_eq!(node.visible_group_count(), 1);
    }

    /// Chunked evaluation must agree with the single-partition evaluation
    /// regardless of chunk size (the flush machinery is pure bookkeeping).
    #[test]
    fn chunking_does_not_change_results() {
        let data = ceos();
        let spec = CubeSpec::new(
            vec![&data.nationality, &data.gender, &data.area],
            vec![MeasureSpec { preagg: &data.age, fns: vec![AggFn::Avg, AggFn::Sum] }],
            2,
        );
        let whole =
            mvd_cube(&spec, &MvdCubeOptions { chunk_size: Some(64), ..Default::default() });
        for chunk in [1u32, 2, 3] {
            let chunked = mvd_cube(
                &spec,
                &MvdCubeOptions { chunk_size: Some(chunk), ..Default::default() },
            );
            for (mask, node) in &whole.nodes {
                let other = chunked.node(*mask).unwrap();
                assert_eq!(
                    node.groups.len(),
                    other.groups.len(),
                    "mask {mask:b} chunk {chunk}"
                );
                for (key, vals) in &node.groups {
                    assert_eq!(&other.groups[key], vals, "mask {mask:b} chunk {chunk}");
                }
            }
        }
    }
}
