//! PGCube — a PostgreSQL-12-style one-pass `GROUP BY CUBE` baseline.
//!
//! Section 6: "we compare the performance of our aggregate evaluation method
//! against the best-effort baseline, which uses PostgreSQL's GROUP BY CUBE
//! implementation, since 2016 based on an efficient one-pass computation of
//! all aggregates in a lattice, that supports additional features such as
//! count(distinct). … (i) PGCube computing counts using count(*), denoted
//! PGCube\*, and (ii) PGCube computing counts using count(distinct), denoted
//! PGCube^d."
//!
//! Like PostgreSQL, the `2^N` grouping sets are decomposed into a minimal
//! number of **rollup chains** (a symmetric chain decomposition of the
//! subset lattice, `C(N, ⌊N/2⌋)` chains); for each chain the flattened input
//! is sorted by the chain's dimension order and *all* of the chain's
//! grouping sets are computed in a single pass over the sorted stream.
//!
//! The flattened input is what the relational join `q` of Section 4.2
//! produces: one row per combination of a fact's (multi-)dimension values,
//! carrying the fact's measure aggregates. A fact with several values on a
//! dimension therefore occupies several rows — `count(*)` and `sum`/`avg`
//! over rows double-count it exactly as Variations 1–2 describe. PGCube^d
//! repairs fact counts with `count(distinct CF)` but cannot repair sums and
//! averages ("we cannot solve this issue with the sum(distinct NW)
//! aggregate").

use crate::mvdcube::{chunk_sizes, MvdCubeOptions};
use crate::result::{CubeResult, NodeResult};
use crate::spec::{CubeSpec, MdaKind};
use spade_storage::{AggFn, FactId};
use std::collections::HashSet;

/// Which counting semantics PGCube uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PgCubeVariant {
    /// `count(*)` / `count(M)` over rows — PGCube\*.
    Star,
    /// `count(distinct CF)` for fact counts — PGCube^d (sums/averages are
    /// still row-based and remain wrong under multi-valued dimensions).
    Distinct,
}

/// One flattened row of the join result.
struct FlatRow {
    /// One value code per dimension (null = domain − 1).
    codes: Vec<u32>,
    fact: u32,
    /// Per measure: `(count, sum, min, max)`; count = 0 means missing.
    measures: Vec<(f64, f64, f64, f64)>,
}

/// Builds the flattened join result (the per-lattice query PGCube runs).
fn flatten(spec: &CubeSpec<'_>) -> Vec<FlatRow> {
    let domains = spec.domain_sizes();
    let null_codes: Vec<u32> = domains.iter().map(|&d| d - 1).collect();
    let mut rows = Vec::new();
    for fact in 0..spec.n_facts as u32 {
        let mut code_lists: Vec<Vec<u32>> = Vec::with_capacity(spec.n_dims());
        let mut any_value = false;
        for (i, dim) in spec.dims.iter().enumerate() {
            let codes = dim.codes_of(FactId(fact));
            if codes.is_empty() {
                code_lists.push(vec![null_codes[i]]);
            } else {
                any_value = true;
                code_lists.push(codes.to_vec());
            }
        }
        if !any_value {
            continue;
        }
        let measures: Vec<(f64, f64, f64, f64)> = spec
            .measures
            .iter()
            .map(|m| {
                let c = m.preagg.count(FactId(fact));
                if c == 0 {
                    (0.0, 0.0, 0.0, 0.0)
                } else {
                    (
                        c as f64,
                        m.preagg.sum(FactId(fact)),
                        m.preagg.min(FactId(fact)).unwrap(),
                        m.preagg.max(FactId(fact)).unwrap(),
                    )
                }
            })
            .collect();
        // Cross product of the fact's dimension values.
        let mut idx = vec![0usize; code_lists.len()];
        loop {
            rows.push(FlatRow {
                codes: idx.iter().zip(&code_lists).map(|(&i, l)| l[i]).collect(),
                fact,
                measures: measures.clone(),
            });
            let mut d = code_lists.len();
            let mut done = false;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < code_lists[d].len() {
                    break;
                }
                idx[d] = 0;
            }
            if done {
                break;
            }
        }
    }
    rows
}

/// Symmetric chain decomposition of the subset lattice of `{0..n−1}` — the
/// de Bruijn–Tengbergen–Kruyswijk construction. Every subset appears in
/// exactly one chain; consecutive chain elements differ by one added bit;
/// the number of chains is `C(n, ⌊n/2⌋)` (minimal, by Dilworth's theorem).
pub fn symmetric_chains(n: usize) -> Vec<Vec<u32>> {
    assert!(n <= 20, "chain decomposition limited to 20 dimensions");
    let mut chains: Vec<Vec<u32>> = vec![vec![0]];
    for bit in 0..n {
        let e = 1u32 << bit;
        let mut next = Vec::with_capacity(chains.len() * 2);
        for chain in chains {
            // C1: the chain extended by adding e to its largest element.
            let mut c1 = chain.clone();
            c1.push(chain.last().unwrap() | e);
            next.push(c1);
            // C2: e added to every element but the last (empty when |c|=1).
            if chain.len() > 1 {
                let c2: Vec<u32> = chain[..chain.len() - 1].iter().map(|s| s | e).collect();
                next.push(c2);
            }
        }
        chains = next;
    }
    chains
}

/// The dimension ordering for a chain: the smallest set's dims first, then
/// each step's added dim — making every chain element a prefix of the
/// ordering (ROLLUP shape).
fn chain_dim_order(chain: &[u32], n_dims: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n_dims);
    let first = chain[0];
    for d in 0..n_dims {
        if first & (1 << d) != 0 {
            order.push(d);
        }
    }
    for w in chain.windows(2) {
        let added = w[1] & !w[0];
        order.push(added.trailing_zeros() as usize);
    }
    order
}

/// Per-grouping-set accumulator for one pass over sorted rows.
struct GroupAccum {
    rows: f64,
    distinct_facts: HashSet<u32>,
    /// Per measure: `(count, sum, min, max, distinct facts with measure)`.
    measures: Vec<(f64, f64, f64, f64, HashSet<u32>)>,
    key: Vec<u32>,
    started: bool,
}

impl GroupAccum {
    fn new(n_measures: usize) -> Self {
        GroupAccum {
            rows: 0.0,
            distinct_facts: HashSet::new(),
            measures: vec![
                (0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, HashSet::new());
                n_measures
            ],
            key: Vec::new(),
            started: false,
        }
    }

    fn reset(&mut self, key: Vec<u32>) {
        self.rows = 0.0;
        self.distinct_facts.clear();
        for m in &mut self.measures {
            *m = (0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, HashSet::new());
        }
        self.key = key;
        self.started = true;
    }

    fn add(&mut self, row: &FlatRow) {
        self.rows += 1.0;
        self.distinct_facts.insert(row.fact);
        for (acc, &(c, s, lo, hi)) in self.measures.iter_mut().zip(&row.measures) {
            if c > 0.0 {
                acc.0 += c;
                acc.1 += s;
                acc.2 = acc.2.min(lo);
                acc.3 = acc.3.max(hi);
                acc.4.insert(row.fact);
            }
        }
    }

    fn emit(&self, mdas: &[crate::spec::Mda], variant: PgCubeVariant) -> Vec<Option<f64>> {
        mdas.iter()
            .map(|mda| match mda.kind {
                MdaKind::FactCount => Some(match variant {
                    PgCubeVariant::Star => self.rows,
                    PgCubeVariant::Distinct => self.distinct_facts.len() as f64,
                }),
                MdaKind::Measure { measure, agg } => {
                    let (count, sum, lo, hi, ref facts) = self.measures[measure];
                    if count == 0.0 {
                        return None;
                    }
                    Some(match (agg, variant) {
                        (AggFn::Count, PgCubeVariant::Star) => count,
                        // count(distinct): rewritten over the fact ids.
                        (AggFn::Count, PgCubeVariant::Distinct) => facts.len() as f64,
                        (AggFn::Sum, _) => sum,
                        (AggFn::Avg, _) => sum / count,
                        (AggFn::Min, _) => lo,
                        (AggFn::Max, _) => hi,
                    })
                }
            })
            .collect()
    }
}

/// Evaluates the full lattice PostgreSQL-style.
///
/// The options are accepted for parity with [`crate::mvd_cube`] but only
/// influence nothing here (PGCube has no partitioning knob); the flattened
/// join is rebuilt per call, as the paper notes PGCube must do per lattice.
pub fn pg_cube(
    spec: &CubeSpec<'_>,
    variant: PgCubeVariant,
    options: &MvdCubeOptions,
) -> CubeResult {
    let _ = chunk_sizes(&spec.domain_sizes(), options, spec.n_facts);
    let rows = flatten(spec);
    let mdas = spec.mdas();
    let labels = mdas.iter().map(|m| m.label.clone()).collect();
    let mut result = CubeResult::new(labels);
    for mask in 0..=((1u32 << spec.n_dims()) - 1) {
        result.nodes.insert(mask, NodeResult::new(mask));
    }

    let n_measures = spec.measures.len();
    for chain in symmetric_chains(spec.n_dims()) {
        let order = chain_dim_order(&chain, spec.n_dims());
        // Sort phase (PostgreSQL's sort for this rollup chain).
        let mut row_idx: Vec<usize> = (0..rows.len()).collect();
        row_idx.sort_by(|&a, &b| {
            for &d in &order {
                match rows[a].codes[d].cmp(&rows[b].codes[d]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        // One pass computing every grouping set of the chain.
        // Level ℓ groups on the first `prefix_len(ℓ)` dims of `order`.
        let levels: Vec<(u32, usize)> =
            chain.iter().map(|&mask| (mask, mask.count_ones() as usize)).collect();
        let mut accums: Vec<GroupAccum> =
            levels.iter().map(|_| GroupAccum::new(n_measures)).collect();

        let domains = spec.domain_sizes();
        let key_for = |row: &FlatRow, mask: u32| -> Vec<u32> {
            // Keys use ascending dim order (the NodeResult convention), with
            // the internal null slot remapped to NULL_CODE.
            (0..spec.n_dims())
                .filter(|d| mask & (1 << d) != 0)
                .map(|d| {
                    if row.codes[d] == domains[d] - 1 {
                        crate::result::NULL_CODE
                    } else {
                        row.codes[d]
                    }
                })
                .collect()
        };

        let mut prev: Option<usize> = None;
        for &ri in &row_idx {
            let row = &rows[ri];
            // First dim position (in `order`) where the row differs from the
            // previous one; groups at deeper levels close.
            let changed_from = match prev {
                None => 0,
                Some(pi) => {
                    let prow = &rows[pi];
                    order
                        .iter()
                        .position(|&d| prow.codes[d] != row.codes[d])
                        .unwrap_or(order.len())
                }
            };
            for (li, &(mask, plen)) in levels.iter().enumerate() {
                if prev.is_none() || plen > changed_from {
                    // Close the previous group at this level, if any.
                    if accums[li].started {
                        let values = accums[li].emit(&mdas, variant);
                        let key = std::mem::take(&mut accums[li].key);
                        result.nodes.get_mut(&mask).unwrap().groups.insert(key, values);
                    }
                    accums[li].reset(key_for(row, mask));
                }
                accums[li].add(row);
            }
            prev = Some(ri);
        }
        // Close the final groups.
        if prev.is_some() {
            for (li, &(mask, _)) in levels.iter().enumerate() {
                if accums[li].started {
                    let values = accums[li].emit(&mdas, variant);
                    let key = std::mem::take(&mut accums[li].key);
                    result.nodes.get_mut(&mask).unwrap().groups.insert(key, values);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvdcube::fixtures::ceos;
    use crate::spec::MeasureSpec;

    #[test]
    fn symmetric_chains_cover_all_subsets_once() {
        for n in 1..=5usize {
            let chains = symmetric_chains(n);
            let mut seen = HashSet::new();
            for chain in &chains {
                assert!(!chain.is_empty());
                for w in chain.windows(2) {
                    let added = w[1] & !w[0];
                    assert_eq!(w[1] & !added, w[0], "chain steps add exactly one bit");
                    assert_eq!(added.count_ones(), 1);
                }
                for &s in chain {
                    assert!(seen.insert(s), "subset {s:b} appears twice");
                }
            }
            assert_eq!(seen.len(), 1 << n);
            // Minimal chain count C(n, n/2).
            let binom =
                |n: u64, k: u64| -> u64 { (1..=k).fold(1u64, |acc, i| acc * (n - k + i) / i) };
            assert_eq!(chains.len() as u64, binom(n as u64, n as u64 / 2));
        }
    }

    fn example3_spec(data: &crate::mvdcube::fixtures::CeosExample) -> CubeSpec<'_> {
        CubeSpec::new(
            vec![&data.nationality, &data.gender, &data.area],
            vec![
                MeasureSpec { preagg: &data.net_worth, fns: vec![AggFn::Sum] },
                MeasureSpec { preagg: &data.age, fns: vec![AggFn::Avg] },
            ],
            2,
        )
    }

    /// PGCube* reproduces Figure 4's erroneous counts (5 Manufacturer CEOs,
    /// 3 female CEOs) — the row-stream equivalent of ArrayCube's bug.
    #[test]
    fn pgcube_star_reproduces_figure4_errors() {
        let data = ceos();
        let spec = example3_spec(&data);
        let r = pg_cube(&spec, PgCubeVariant::Star, &MvdCubeOptions::default());
        let area = r.node(0b100).unwrap();
        assert_eq!(area.groups[&vec![2]][0], Some(5.0)); // Manufacturer
        let gender = r.node(0b010).unwrap();
        assert_eq!(gender.groups[&vec![0]][0], Some(3.0)); // Female
    }

    /// PGCube^d fixes Example 3's counts via count(distinct CF)…
    #[test]
    fn pgcube_distinct_fixes_fact_counts() {
        let data = ceos();
        let spec = example3_spec(&data);
        let r = pg_cube(&spec, PgCubeVariant::Distinct, &MvdCubeOptions::default());
        let area = r.node(0b100).unwrap();
        assert_eq!(area.groups[&vec![2]][0], Some(2.0));
        let gender = r.node(0b010).unwrap();
        assert_eq!(gender.groups[&vec![0]][0], Some(1.0));
    }

    /// …but Variations 1–2 remain wrong: sums and averages double-count.
    #[test]
    fn pgcube_distinct_still_wrong_on_sum_and_avg() {
        let data = ceos();
        let spec = example3_spec(&data);
        let r = pg_cube(&spec, PgCubeVariant::Distinct, &MvdCubeOptions::default());
        let area = r.node(0b100).unwrap();
        let manufacturer = &area.groups[&vec![2]];
        assert_eq!(manufacturer[1], Some(2.8e9 + 4.0 * 1.2e8)); // Variation 1
        let avg = manufacturer[2].unwrap();
        assert!((avg - (47.0 + 4.0 * 66.0) / 5.0).abs() < 1e-9); // Variation 2
    }

    /// Root-level results are always correct (each root group holds full
    /// combinations, so every fact appears once per group).
    #[test]
    fn pgcube_matches_mvdcube_at_root() {
        let data = ceos();
        let spec = example3_spec(&data);
        let opts = MvdCubeOptions::default();
        let pg = pg_cube(&spec, PgCubeVariant::Star, &opts);
        let mvd = crate::mvd_cube(&spec, &opts);
        let (a, b) = (pg.node(0b111).unwrap(), mvd.node(0b111).unwrap());
        assert_eq!(a.groups.len(), b.groups.len());
        for (key, vals) in &b.groups {
            let avals = &a.groups[key];
            for (x, y) in vals.iter().zip(avals) {
                match (x, y) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    /// On single-valued data both PGCube variants agree with MVDCube on the
    /// entire lattice (Theorem 1's K = 0 case).
    #[test]
    fn pgcube_correct_without_multi_valued_dims() {
        use spade_storage::{CategoricalColumn, NumericColumn};
        let d1 = CategoricalColumn::from_rows("a", &[vec!["x"], vec!["y"], vec!["x"], vec![]]);
        let d2 =
            CategoricalColumn::from_rows("b", &[vec!["1"], vec!["2"], vec!["2"], vec!["1"]]);
        let m = NumericColumn::from_rows("v", &[vec![1.0], vec![2.0], vec![4.0], vec![8.0]])
            .preaggregate();
        let spec = CubeSpec::new(
            vec![&d1, &d2],
            vec![MeasureSpec {
                preagg: &m,
                fns: vec![AggFn::Sum, AggFn::Avg, AggFn::Count, AggFn::Min, AggFn::Max],
            }],
            4,
        );
        let opts = MvdCubeOptions::default();
        let mvd = crate::mvd_cube(&spec, &opts);
        for variant in [PgCubeVariant::Star, PgCubeVariant::Distinct] {
            let pg = pg_cube(&spec, variant, &opts);
            for (mask, node) in &mvd.nodes {
                let other = pg.node(*mask).unwrap();
                assert_eq!(node.groups.len(), other.groups.len(), "mask {mask:b}");
                for (key, vals) in &node.groups {
                    let ovals = &other.groups[key];
                    for (x, y) in vals.iter().zip(ovals) {
                        match (x, y) {
                            (Some(x), Some(y)) => {
                                assert!((x - y).abs() < 1e-9, "mask {mask:b} {key:?}")
                            }
                            (x, y) => assert_eq!(x, y, "mask {mask:b} {key:?}"),
                        }
                    }
                }
            }
        }
    }
}
