//! The Aggregate Result Manager (ARM).
//!
//! Section 3, Steps 4–5: "The final results are produced in an incremental
//! fashion and handled by the Aggregate Result Manager (ARM). The ARM stores
//! them and incrementally updates statistics such as minimum and maximum
//! values … used to determine the interestingness of the computed MDAs (by
//! applying h) in one pass over their results. … Once the evaluation is
//! complete, the ARM retrieves all the evaluated MDAs, computes their
//! interestingness score by applying h, and returns the k best aggregates."

use crate::result::CubeResult;
use parking_lot::Mutex;
use spade_stats::{Interestingness, RunningMoments};
use std::collections::HashMap;

/// Identifies one MDA inside one lattice: a lattice node plus an index into
/// the cube spec's MDA list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggregateId {
    /// Lattice node (dimension mask).
    pub node_mask: u32,
    /// Index into [`crate::CubeSpec::mdas`].
    pub mda: usize,
}

/// A scored aggregate, ready for the top-k list.
#[derive(Clone, Debug)]
pub struct ScoredAggregate {
    /// Which aggregate.
    pub id: AggregateId,
    /// `f(M)` label, e.g. `sum(netWorth)`.
    pub mda_label: String,
    /// Interestingness score `h({t₁.v … t_W.v})`.
    pub score: f64,
    /// Number of groups `W` in the result.
    pub group_count: usize,
}

/// Accumulates per-aggregate statistics in one pass and ranks by `h`.
///
/// Thread-safe: evaluation code may push group values from worker threads.
#[derive(Debug, Default)]
pub struct AggregateResultManager {
    stats: Mutex<HashMap<AggregateId, RunningMoments>>,
}

impl AggregateResultManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one group's aggregated value for an MDA.
    pub fn push(&self, id: AggregateId, value: f64) {
        self.stats.lock().entry(id).or_default().push(value);
    }

    /// Ingests a finished [`CubeResult`] (the batch path used after
    /// MVDCube/PGCube runs). Only *visible* groups are scored: per
    /// Section 2, CFs missing a dimension do not contribute to the result.
    ///
    /// Groups are consumed in sorted key order: floating-point accumulation
    /// is not associative, so a deterministic order makes scores (and hence
    /// tie-breaking in the top-k) reproducible across runs.
    pub fn ingest(&self, result: &CubeResult) {
        let mut stats = self.stats.lock();
        for (&mask, node) in &result.nodes {
            let mut groups: Vec<(&Vec<u32>, &Vec<Option<f64>>)> =
                node.visible_groups().collect();
            groups.sort_by(|a, b| a.0.cmp(b.0));
            for (_, values) in groups {
                for (mda, v) in values.iter().enumerate() {
                    if let Some(v) = v {
                        stats.entry(AggregateId { node_mask: mask, mda }).or_default().push(*v);
                    }
                }
            }
        }
    }

    /// Number of aggregates with at least one group value.
    pub fn aggregate_count(&self) -> usize {
        self.stats.lock().len()
    }

    /// The incremental min/max statistics of one aggregate, if present.
    pub fn min_max(&self, id: AggregateId) -> Option<(f64, f64)> {
        let stats = self.stats.lock();
        let m = stats.get(&id)?;
        (m.count() > 0).then(|| (m.min(), m.max()))
    }

    /// Scores every aggregate with `h` and returns the `k` best, using the
    /// one-pass moments (no re-scan of group values).
    pub fn top_k(
        &self,
        h: Interestingness,
        k: usize,
        labels: &[String],
    ) -> Vec<ScoredAggregate> {
        let stats = self.stats.lock();
        let mut scored: Vec<ScoredAggregate> = stats
            .iter()
            .map(|(&id, m)| ScoredAggregate {
                id,
                mda_label: labels.get(id.mda).cloned().unwrap_or_default(),
                score: h.score_from_moments(m),
                group_count: m.count() as usize,
            })
            .collect();
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        scored.truncate(k);
        scored
    }
}

/// Convenience: score a finished result directly and return the top-k.
pub fn top_k_of_result(
    result: &CubeResult,
    h: Interestingness,
    k: usize,
) -> Vec<ScoredAggregate> {
    let arm = AggregateResultManager::new();
    arm.ingest(result);
    arm.top_k(h, k, &result.mda_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::NodeResult;

    fn result_with_two_aggregates() -> CubeResult {
        let mut r = CubeResult::new(vec!["count(*)".into(), "sum(x)".into()]);
        let mut flat = NodeResult::new(0b1);
        // count: uniform (uninteresting); sum: one outlier (interesting).
        flat.groups.insert(vec![0], vec![Some(1.0), Some(10.0)]);
        flat.groups.insert(vec![1], vec![Some(1.0), Some(11.0)]);
        flat.groups.insert(vec![2], vec![Some(1.0), Some(500.0)]);
        r.nodes.insert(0b1, flat);
        r
    }

    #[test]
    fn ranks_outlier_aggregate_first() {
        let r = result_with_two_aggregates();
        let top = top_k_of_result(&r, Interestingness::Variance, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].mda_label, "sum(x)");
        assert!(top[0].score > top[1].score);
        assert_eq!(top[1].score, 0.0); // uniform counts
    }

    #[test]
    fn k_truncates() {
        let r = result_with_two_aggregates();
        let top = top_k_of_result(&r, Interestingness::Variance, 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn incremental_push_equals_ingest() {
        let r = result_with_two_aggregates();
        let batch = AggregateResultManager::new();
        batch.ingest(&r);
        let inc = AggregateResultManager::new();
        let id = AggregateId { node_mask: 0b1, mda: 1 };
        for v in [10.0, 11.0, 500.0] {
            inc.push(id, v);
        }
        let a = batch.top_k(Interestingness::Variance, 1, &r.mda_labels);
        let b = inc.top_k(Interestingness::Variance, 1, &r.mda_labels);
        assert_eq!(a[0].id, b[0].id);
        assert!((a[0].score - b[0].score).abs() < 1e-9);
    }

    #[test]
    fn min_max_statistics_maintained() {
        let r = result_with_two_aggregates();
        let arm = AggregateResultManager::new();
        arm.ingest(&r);
        let id = AggregateId { node_mask: 0b1, mda: 1 };
        assert_eq!(arm.min_max(id), Some((10.0, 500.0)));
        assert_eq!(arm.min_max(AggregateId { node_mask: 0b11, mda: 0 }), None);
        assert_eq!(arm.aggregate_count(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut r = CubeResult::new(vec!["count(*)".into()]);
        for mask in [0b1u32, 0b10] {
            let mut node = NodeResult::new(mask);
            node.groups.insert(vec![0], vec![Some(1.0)]);
            node.groups.insert(vec![1], vec![Some(5.0)]);
            r.nodes.insert(mask, node);
        }
        let top = top_k_of_result(&r, Interestingness::Variance, 2);
        // Equal scores: break ties by aggregate id.
        assert!(top[0].id < top[1].id);
    }
}
