//! Lattice-based multidimensional aggregate (MDA) computation.
//!
//! This crate contains the algorithmic heart of the paper:
//!
//! * [`lattice`] — the `2^N`-node dimension lattice and the Minimum Memory
//!   Spanning Tree (MMST) of ArrayCube [49], with the classical memory
//!   formula (Section 4.1);
//! * [`translate`] — Data Translation: laying the CFS out as a partitioned
//!   array of cells, each holding the set of facts (Section 4.3), with the
//!   stratified reservoir sampling of early-stop piggybacked on the same
//!   pass (Section 5.3);
//! * [`mvdcube`] — **MVDCube** (Algorithm 1): the correct one-pass
//!   evaluation in the presence of multi-valued dimensions, propagating
//!   Roaring bitmaps down the MMST and computing measures from per-fact
//!   pre-aggregates at flush time;
//! * [`arraycube`] — the classical ArrayCube baseline, which computes each
//!   lattice node from a parent's *aggregated values* and is therefore
//!   subject to the errors characterized by Lemma 1 / Theorem 1;
//! * [`pgcube`] — a PostgreSQL-12-style one-pass `GROUP BY CUBE`
//!   (grouping-sets via symmetric rollup-chain decomposition over the
//!   flattened join result), in its `count(*)` (PGCube\*) and
//!   `count(distinct)` (PGCube^d) variants (Section 6, baselines);
//! * [`arm`] — the Aggregate Result Manager: stores per-MDA group values,
//!   incrementally maintains statistics, and ranks MDAs by interestingness
//!   (Section 3, Steps 4–5);
//! * [`earlystop`] — the early-stop pruning loop over the stratified samples
//!   (Section 5), wired into MVDCube;
//! * [`compare`] — error measurement between a correct and a baseline result
//!   (Experiments 2–3: #wrong aggregates, error-ratio distributions).

pub mod arm;
pub mod arraycube;
pub mod compare;
pub mod earlystop;
mod engine;
pub mod engine_baseline;
pub mod lattice;
pub mod mvdcube;
pub mod pgcube;
pub mod result;
pub mod spec;
pub mod translate;

pub use arm::AggregateResultManager;
pub use arraycube::array_cube;
pub use compare::{compare_results, ComparisonReport};
pub use earlystop::{EarlyStopConfig, EarlyStopOutcome};
pub use engine::{CellStorePolicy, DENSE_CAPACITY_LIMIT};
pub use engine_baseline::mvd_cube_baseline;
pub use lattice::{Lattice, Mmst};
pub use mvdcube::{mvd_cube, mvd_cube_with_earlystop, MvdCubeOptions};
pub use pgcube::{pg_cube, PgCubeVariant};
pub use result::{CubeResult, NodeResult, NULL_CODE_SENTINEL};
pub use spade_parallel::{Budget, CancelReason, Cancelled};
pub use spec::{CubeSpec, Mda, MdaKind, MeasureSpec};
