//! Property tests over the engine's cell-storage modes and shard plans: on
//! random multi-valued lattices, dense and sparse region storage must
//! produce bit-identical results — and both must agree with the preserved
//! nested-HashMap baseline engine — for every chunking, every shard
//! granularity, and every thread count.

use proptest::prelude::*;
use spade_cube::engine_baseline::mvd_cube_baseline;
use spade_cube::mvdcube::{mvd_cube, MvdCubeOptions};
use spade_cube::{CellStorePolicy, CubeResult, CubeSpec, MeasureSpec};
use spade_storage::{CategoricalColumn, FactId, NumericColumnBuilder};

/// Raw random data: per dimension, per fact, a set of value codes; one
/// multi-valued numeric measure.
#[derive(Clone, Debug)]
struct RawData {
    dims: Vec<Vec<Vec<u8>>>,
    measure: Vec<Vec<i32>>,
}

fn raw_data(max_dims: usize, max_facts: usize) -> impl Strategy<Value = RawData> {
    (1..=max_dims, 1..=max_facts).prop_flat_map(move |(n_dims, n)| {
        let dim = prop::collection::vec(
            prop::collection::btree_set(0u8..5, 0..=3)
                .prop_map(|s| s.into_iter().collect::<Vec<u8>>()),
            n,
        );
        let dims = prop::collection::vec(dim, n_dims);
        let measure = prop::collection::vec(prop::collection::vec(-40i32..40, 0..=2), n);
        (dims, measure).prop_map(|(dims, measure)| RawData { dims, measure })
    })
}

fn build_columns(data: &RawData) -> (Vec<CategoricalColumn>, spade_storage::PreAggregated) {
    let n = data.measure.len();
    let dims = data
        .dims
        .iter()
        .enumerate()
        .map(|(d, rows)| {
            let labelled: Vec<Vec<String>> = rows
                .iter()
                .map(|codes| codes.iter().map(|c| format!("v{c}")).collect())
                .collect();
            let as_refs: Vec<Vec<&str>> =
                labelled.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
            CategoricalColumn::from_rows(format!("d{d}"), &as_refs)
        })
        .collect();
    let mut builder = NumericColumnBuilder::new("m");
    for (fact, values) in data.measure.iter().enumerate() {
        for &v in values {
            builder.add(FactId(fact as u32), v as f64);
        }
    }
    (dims, builder.build(n).preaggregate())
}

fn assert_identical(
    a: &CubeResult,
    b: &CubeResult,
    context: &str,
) -> Result<(), TestCaseError> {
    let mut masks: Vec<u32> = a.nodes.keys().copied().collect();
    masks.sort_unstable();
    let mut other: Vec<u32> = b.nodes.keys().copied().collect();
    other.sort_unstable();
    prop_assert_eq!(&masks, &other, "{}: node sets differ", context);
    for &mask in &masks {
        let na = &a.nodes[&mask];
        let nb = &b.nodes[&mask];
        prop_assert_eq!(na.groups.len(), nb.groups.len(), "{}: node {:b}", context, mask);
        for (key, va) in &na.groups {
            let vb = nb.groups.get(key);
            prop_assert!(vb.is_some(), "{}: node {:b} missing group {:?}", context, mask, key);
            let vb = vb.unwrap();
            prop_assert_eq!(va.len(), vb.len());
            for (i, (x, y)) in va.iter().zip(vb).enumerate() {
                let same = match (x, y) {
                    (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                prop_assert!(
                    same,
                    "{}: node {:b} group {:?} mda {}: {:?} vs {:?}",
                    context,
                    mask,
                    key,
                    i,
                    x,
                    y
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn dense_and_sparse_storage_agree(data in raw_data(3, 14), chunk in 1u32..4) {
        let (dims, preagg) = build_columns(&data);
        let n_facts = data.measure.len();
        let spec = CubeSpec::new(
            dims.iter().collect(),
            vec![MeasureSpec {
                preagg: &preagg,
                fns: vec![
                    spade_storage::AggFn::Sum,
                    spade_storage::AggFn::Avg,
                    spade_storage::AggFn::Min,
                    spade_storage::AggFn::Max,
                ],
            }],
            n_facts,
        );
        let with_policy = |policy| MvdCubeOptions {
            chunk_size: Some(chunk),
            store_policy: policy,
            ..Default::default()
        };
        let dense = mvd_cube(&spec, &with_policy(CellStorePolicy::ForceDense));
        let sparse = mvd_cube(&spec, &with_policy(CellStorePolicy::ForceSparse));
        let auto = mvd_cube(&spec, &with_policy(CellStorePolicy::Auto));
        let baseline = mvd_cube_baseline(&spec, &with_policy(CellStorePolicy::Auto));
        assert_identical(&dense, &sparse, "dense vs sparse")?;
        assert_identical(&dense, &auto, "dense vs auto")?;
        assert_identical(&dense, &baseline, "dense vs nested-HashMap baseline")?;
    }

    /// The region-sharded executor must agree with the nested-HashMap
    /// baseline for every shard granularity (1 = one shard per cell,
    /// u64::MAX = a single shard), store policy, and thread count — the
    /// shard plan is a pure performance knob.
    #[test]
    fn sharded_engine_matches_baseline(
        data in raw_data(3, 14),
        chunk in 1u32..4,
        shard_weight in 1u64..48,
        threads in 1usize..4,
    ) {
        let (dims, preagg) = build_columns(&data);
        let n_facts = data.measure.len();
        let spec = CubeSpec::new(
            dims.iter().collect(),
            vec![MeasureSpec {
                preagg: &preagg,
                fns: vec![spade_storage::AggFn::Sum, spade_storage::AggFn::Max],
            }],
            n_facts,
        );
        let with_shards = |policy, weight| MvdCubeOptions {
            chunk_size: Some(chunk),
            store_policy: policy,
            threads,
            shard_weight: Some(weight),
            ..Default::default()
        };
        let baseline = mvd_cube_baseline(
            &spec,
            &MvdCubeOptions { chunk_size: Some(chunk), ..Default::default() },
        );
        for policy in [CellStorePolicy::ForceDense, CellStorePolicy::ForceSparse] {
            for weight in [shard_weight, u64::MAX] {
                let sharded = mvd_cube(&spec, &with_shards(policy, weight));
                assert_identical(
                    &sharded,
                    &baseline,
                    &format!("{policy:?} weight {weight} threads {threads} vs baseline"),
                )?;
            }
        }
    }
}
