//! N-Triples corpus generation for the ingestion benchmarks.
//!
//! `bench_ingest` measures the full offline phase — parse, dictionary
//! encode, index build, RDFS saturation — so its inputs must be *text*
//! (the simulated graphs of [`crate::realistic`] serialized to `.nt`) and
//! must carry an ontology for saturation to chew on (the simulated graphs
//! themselves contain no schema triples). [`nt_corpus`] produces both: a
//! named Table-2 graph with a deterministic RDFS overlay, serialized in
//! insertion order.

use crate::realistic;
use crate::RealisticConfig;
use spade_rdf::{vocab, write_ntriples, Graph, Term, TermId};

/// Serializes `graph` to N-Triples text (one triple per line, insertion
/// order preserved). Thin re-export of [`spade_rdf::write_ntriples`] so
/// generators and benches have one entry point.
pub fn to_ntriples(graph: &Graph) -> String {
    write_ntriples(graph)
}

/// Overlays a deterministic RDFS ontology onto `graph` and returns the
/// number of schema triples added:
///
/// * every class gets a `subClassOf` chain of `depth` fresh superclasses
///   (so every typed node gains `depth` derived types);
/// * every second data property gets a fresh superproperty;
/// * every fourth property a `domain`, every fourth (offset) a `range`
///   declaration over the first chain's classes.
///
/// Iteration orders are sorted by `TermId`, so the overlay is identical
/// across runs.
pub fn add_ontology(graph: &mut Graph, ns: &str, depth: usize) -> usize {
    let sub_class = Term::iri(vocab::RDFS_SUBCLASSOF);
    let sub_prop = Term::iri(vocab::RDFS_SUBPROPERTYOF);
    let mut added = 0usize;

    let mut classes: Vec<TermId> = graph.classes().collect();
    classes.sort_unstable();
    for (i, class) in classes.into_iter().enumerate() {
        let mut lower = graph.dict.term(class).clone();
        for level in 1..=depth {
            let upper = Term::iri(format!("http://{ns}/Sup{i}_{level}"));
            if graph.insert(lower, sub_class.clone(), upper.clone()) {
                added += 1;
            }
            lower = upper;
        }
    }

    let rdf_type = graph.rdf_type_id();
    let mut props: Vec<TermId> = graph.properties().filter(|&p| p != rdf_type).collect();
    props.sort_unstable();
    for (j, p) in props.into_iter().enumerate() {
        let p_term = graph.dict.term(p).clone();
        if j % 2 == 0 {
            let sup = Term::iri(format!("http://{ns}/superProp{j}"));
            if graph.insert(p_term.clone(), sub_prop.clone(), sup) {
                added += 1;
            }
        }
        if j % 4 == 0 {
            let dom = Term::iri(format!("http://{ns}/Sup0_1"));
            if graph.insert(p_term.clone(), Term::iri(vocab::RDFS_DOMAIN), dom) {
                added += 1;
            }
        }
        if j % 4 == 2 {
            let rng = Term::iri(format!("http://{ns}/Sup0_1"));
            if graph.insert(p_term, Term::iri(vocab::RDFS_RANGE), rng) {
                added += 1;
            }
        }
    }
    added
}

/// Generates the named simulated graph (as in [`realistic`]), overlays an
/// RDFS ontology of the given subclass-chain depth, and serializes it to
/// N-Triples — the standard `bench_ingest` input.
pub fn nt_corpus(name: &str, cfg: &RealisticConfig, ontology_depth: usize) -> String {
    let mut graph = match name {
        "Airline" => realistic::airline(cfg),
        "CEOs" => realistic::ceos(cfg),
        "DBLP" => realistic::dblp(cfg),
        "Foodista" => realistic::foodista(cfg),
        "NASA" => realistic::nasa(cfg),
        "Nobel" => realistic::nobel(cfg),
        other => panic!("unknown dataset {other}"),
    };
    if ontology_depth > 0 {
        add_ontology(&mut graph, "ont.example.org", ontology_depth);
    }
    to_ntriples(&graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_roundtrips_and_carries_schema() {
        let cfg = RealisticConfig { scale: 40, seed: 3 };
        let nt = nt_corpus("CEOs", &cfg, 4);
        let g = spade_rdf::parse_ntriples(&nt).unwrap();
        assert!(g.len() > 100);
        let sub_class =
            g.dict.id_of(&Term::iri(vocab::RDFS_SUBCLASSOF)).expect("schema present");
        assert!(!g.property_pairs(sub_class).is_empty());
        // Saturation has real work: derived types appear.
        let mut g = g;
        assert!(spade_rdf::saturate(&mut g) > 0);
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = RealisticConfig { scale: 25, seed: 9 };
        assert_eq!(nt_corpus("NASA", &cfg, 3), nt_corpus("NASA", &cfg, 3));
    }
}
