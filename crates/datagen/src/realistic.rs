//! Simulated versions of the six real graphs of Table 2.
//!
//! The real dumps (Airline [24], CEOs [37], DBLP [21], Foodista [18],
//! NASA [17], Nobel [12]) are not reachable offline, so each generator
//! reproduces the *structural profile* the paper reports and exploits:
//!
//! | graph    | what drives the experiments                                   |
//! |----------|---------------------------------------------------------------|
//! | Airline  | originally relational: single CFS, fixed single-valued numeric |
//! |          | properties, no links → **no derivations** (Exp. 1's baseline)  |
//! | CEOs     | heterogeneous: multi-valued nationality & company areas, paths |
//! |          | via company/politicalConnection, text, missing values, a       |
//! |          | Dos-Santos-style netWorth outlier                              |
//! | DBLP     | one big homogeneous CFS; only `year` is a direct dimension;    |
//! |          | titles yield keyword derivations; multi-valued authors         |
//! | Foodista | almost nothing numeric/direct; multi-valued ingredients and    |
//! |          | text make *all* aggregates derivation-born                     |
//! | NASA     | spacecraft/launch types, mass outliers per discipline,         |
//! |          | launch-site skew (Plesetsk/Baikonur), spacecraft/agency paths  |
//! | Nobel    | laureates with category/year/share, affiliation paths,         |
//! |          | multi-valued affiliations — many multi-valued attributes       |
//!
//! The injected outliers (Angola's netWorth, Plesetsk's launch counts,
//! Human-crew spacecraft mass…) are the ones Figure 6 surfaces, so the
//! qualitative experiments find the same stories.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spade_rdf::{vocab, Graph, Term};

/// Scale/seed knobs shared by all six generators.
#[derive(Clone, Copy, Debug)]
pub struct RealisticConfig {
    /// Number of primary facts (CEOs, papers, flights, …).
    pub scale: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealisticConfig {
    fn default() -> Self {
        RealisticConfig { scale: 1_000, seed: 7 }
    }
}

/// A named simulated graph.
pub struct RealGraph {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// The generated triples.
    pub graph: Graph,
}

fn iri(ns: &str, local: impl std::fmt::Display) -> Term {
    Term::iri(format!("http://{ns}/{local}"))
}

const COUNTRIES: [&str; 16] = [
    "Angola", "Brazil", "France", "Lebanon", "Nigeria", "USA", "Japan", "Germany", "India",
    "China", "Italy", "Spain", "Mexico", "Canada", "Kenya", "Poland",
];
const AREAS: [&str; 8] = [
    "Automotive",
    "Diamond",
    "Manufacturer",
    "Natural gas",
    "Banking",
    "Telecom",
    "Retail",
    "Software",
];
const ROLES: [&str; 4] = ["President", "Minister", "Senator", "Governor"];
const OCCUPATIONS: [&str; 6] =
    ["entrepreneur", "philanthropist", "shareholder", "investor", "engineer", "banker"];

/// CEOs-like graph: heterogeneous, multi-valued, path-rich (Figure 1 writ
/// large).
pub fn ceos(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "ceos";
    for i in 0..cfg.scale {
        let ceo = iri(ns, format!("ceo{i}"));
        g.insert(ceo.clone(), ty.clone(), iri(ns, "CEO"));
        g.insert(ceo.clone(), iri(ns, "name"), Term::lit(format!("CEO {i}")));
        // 1–3 nationalities (multi-valued dimension).
        let n_nat = 1 + rng.gen_range(0..3).min(rng.gen_range(0..3));
        let first_nat = rng.gen_range(0..COUNTRIES.len());
        for k in 0..n_nat {
            g.insert(
                ceo.clone(),
                iri(ns, "nationality"),
                Term::lit(COUNTRIES[(first_nat + k * 3) % COUNTRIES.len()]),
            );
        }
        // Gender missing for ~20% of CEOs.
        if rng.gen_bool(0.8) {
            g.insert(
                ceo.clone(),
                iri(ns, "gender"),
                Term::lit(if rng.gen_bool(0.3) { "Female" } else { "Male" }),
            );
        }
        if rng.gen_bool(0.85) {
            g.insert(ceo.clone(), iri(ns, "age"), Term::int(rng.gen_range(30..80)));
        }
        // Dos-Santos-style outlier: Angolan CEOs are far richer.
        let rich = COUNTRIES[first_nat] == "Angola";
        let net_worth = if rich {
            1.0e9 + rng.gen::<f64>() * 2.0e9
        } else {
            1.0e7 + rng.gen::<f64>() * 9.0e7
        };
        g.insert(ceo.clone(), iri(ns, "netWorth"), Term::num(net_worth.round()));
        g.insert(
            ceo.clone(),
            iri(ns, "occupation"),
            Term::lit(OCCUPATIONS[rng.gen_range(0..OCCUPATIONS.len())]),
        );
        // 1–3 companies, each with 1–2 areas and a headquarters.
        for c in 0..rng.gen_range(1..=3usize) {
            let company = iri(ns, format!("company{i}_{c}"));
            g.insert(ceo.clone(), iri(ns, "company"), company.clone());
            g.insert(company.clone(), ty.clone(), iri(ns, "Company"));
            g.insert(company.clone(), iri(ns, "name"), Term::lit(format!("Company {i}-{c}")));
            let a0 = rng.gen_range(0..AREAS.len());
            g.insert(company.clone(), iri(ns, "area"), Term::lit(AREAS[a0]));
            if rng.gen_bool(0.4) {
                g.insert(
                    company.clone(),
                    iri(ns, "area"),
                    Term::lit(AREAS[(a0 + 2) % AREAS.len()]),
                );
            }
            g.insert(
                company.clone(),
                iri(ns, "headquarters"),
                Term::lit(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
            );
            g.insert(
                company.clone(),
                iri(ns, "description"),
                Term::lit(format!(
                    "{} operations spanning {} markets worldwide",
                    AREAS[a0],
                    rng.gen_range(2..40)
                )),
            );
        }
        // Political connection for ~40%.
        if rng.gen_bool(0.4) {
            let pol = iri(ns, format!("pol{}", i % (cfg.scale / 4 + 1)));
            g.insert(ceo.clone(), iri(ns, "politicalConnection"), pol.clone());
            g.insert(pol.clone(), ty.clone(), iri(ns, "Politician"));
            g.insert(pol.clone(), iri(ns, "role"), Term::lit(ROLES[i % ROLES.len()]));
            g.insert(pol.clone(), iri(ns, "name"), Term::lit(format!("Politician {i}")));
        }
    }
    g
}

const DISCIPLINES: [&str; 6] =
    ["Human crew", "Microgravity", "Life sciences", "Repair", "Astronomy", "Communications"];
const LAUNCH_SITES: [&str; 8] = [
    "Plesetsk",
    "Baikonur",
    "Cape Canaveral",
    "Vandenberg Base",
    "Kourou",
    "Tanegashima",
    "Jiuquan",
    "Wallops",
];
const AGENCIES: [&str; 5] = ["USSR", "USA", "ESA", "JAXA", "CNSA"];

/// NASA-like graph: spacecraft + launches, with the Figure 6(b)/(c) skews.
pub fn nasa(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "nasa";
    let n_spacecraft = cfg.scale / 2;
    let mut soviet_craft = vec![false; n_spacecraft];
    #[allow(clippy::needless_range_loop)] // i names both nodes and the flag slot
    for i in 0..n_spacecraft {
        let sc = iri(ns, format!("spacecraft{i}"));
        g.insert(sc.clone(), ty.clone(), iri(ns, "Spacecraft"));
        g.insert(sc.clone(), iri(ns, "name"), Term::lit(format!("Craft {i}")));
        let disc = DISCIPLINES[rng.gen_range(0..DISCIPLINES.len())];
        g.insert(sc.clone(), iri(ns, "discipline"), Term::lit(disc));
        // Figure 6(c): Human crew / Microgravity / Life sciences / Repair
        // spacecraft are much heavier.
        let heavy = matches!(disc, "Human crew" | "Microgravity" | "Life sciences" | "Repair");
        let mass = if heavy {
            20_000.0 + rng.gen::<f64>() * 80_000.0
        } else {
            200.0 + rng.gen::<f64>() * 2_000.0
        };
        g.insert(sc.clone(), iri(ns, "mass"), Term::num(mass.round()));
        // Agency mix: USSR 40%, USA 30%, others 30% (the Cold-War-era
        // launch record that drives Figure 6(b)'s skew).
        let r: f64 = rng.gen();
        let agency_idx = if r < 0.4 {
            0
        } else if r < 0.7 {
            1
        } else {
            2 + rng.gen_range(0..AGENCIES.len() - 2)
        };
        soviet_craft[i] = agency_idx == 0; // AGENCIES[0] = "USSR"
        let agency = iri(ns, format!("agency{agency_idx}"));
        g.insert(sc.clone(), iri(ns, "agency"), agency.clone());
        g.insert(agency.clone(), ty.clone(), iri(ns, "Agency"));
        g.insert(agency.clone(), iri(ns, "name"), Term::lit(AGENCIES[agency_idx]));
    }
    for i in 0..cfg.scale {
        let launch = iri(ns, format!("launch{i}"));
        g.insert(launch.clone(), ty.clone(), iri(ns, "Launch"));
        // Figure 6(b): USSR launches concentrate on Plesetsk/Baikonur.
        let sc_idx = rng.gen_range(0..n_spacecraft.max(1));
        let soviet = soviet_craft.get(sc_idx).copied().unwrap_or(false);
        let site = if soviet && rng.gen_bool(0.9) {
            // Soviet launches concentrate on Plesetsk/Baikonur.
            LAUNCH_SITES[rng.gen_range(0..2)]
        } else if !soviet && rng.gen_bool(0.6) {
            // US launches concentrate on Cape Canaveral/Vandenberg.
            LAUNCH_SITES[2 + rng.gen_range(0..2)]
        } else {
            LAUNCH_SITES[4 + rng.gen_range(0..LAUNCH_SITES.len() - 4)]
        };
        g.insert(launch.clone(), iri(ns, "launchsite"), Term::lit(site));
        g.insert(launch.clone(), iri(ns, "spacecraft"), iri(ns, format!("spacecraft{sc_idx}")));
        g.insert(launch.clone(), iri(ns, "year"), Term::int(1957 + (i % 60) as i64));
        if rng.gen_bool(0.3) {
            g.insert(
                launch.clone(),
                iri(ns, "spacecraft"),
                iri(ns, format!("spacecraft{}", (sc_idx + 1) % n_spacecraft.max(1))),
            );
        }
    }
    g
}

const KEYWORD_POOL: [&str; 12] = [
    "database",
    "graph",
    "learning",
    "query",
    "neural",
    "distributed",
    "semantic",
    "stream",
    "optimization",
    "privacy",
    "index",
    "transaction",
];

/// DBLP-like graph: one homogeneous publication CFS; `year` is the only
/// direct dimension, everything else comes from derivations.
pub fn dblp(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(2));
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "dblp";
    let n_authors = (cfg.scale / 3).max(1);
    for i in 0..cfg.scale {
        let paper = iri(ns, format!("paper{i}"));
        g.insert(paper.clone(), ty.clone(), iri(ns, "Publication"));
        g.insert(paper.clone(), iri(ns, "year"), Term::int(1980 + (i % 40) as i64));
        let k1 = KEYWORD_POOL[rng.gen_range(0..KEYWORD_POOL.len())];
        let k2 = KEYWORD_POOL[rng.gen_range(0..KEYWORD_POOL.len())];
        g.insert(
            paper.clone(),
            iri(ns, "title"),
            Term::lit(format!("On {k1} methods for {k2} systems")),
        );
        g.insert(paper.clone(), iri(ns, "pages"), Term::int(rng.gen_range(4..30)));
        for _ in 0..rng.gen_range(1..=4usize) {
            let author = iri(ns, format!("author{}", rng.gen_range(0..n_authors)));
            g.insert(paper.clone(), iri(ns, "author"), author.clone());
            g.insert(author.clone(), iri(ns, "name"), Term::lit("Author".to_string()));
        }
    }
    g
}

const INGREDIENTS: [&str; 14] = [
    "flour",
    "sugar",
    "butter",
    "tomato",
    "basil",
    "garlic",
    "onion",
    "rice",
    "beans",
    "chili",
    "lemon",
    "salt",
    "olive oil",
    "cumin",
];

/// Foodista-like graph: text + multi-valued ingredients; no direct numeric
/// dimension — all interesting aggregates arise from derivations.
pub fn foodista(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(3));
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "food";
    for i in 0..cfg.scale {
        let recipe = iri(ns, format!("recipe{i}"));
        g.insert(recipe.clone(), ty.clone(), iri(ns, "Recipe"));
        g.insert(recipe.clone(), iri(ns, "title"), Term::lit(format!("Recipe {i}")));
        let n_ing = rng.gen_range(2..=8usize);
        let start = rng.gen_range(0..INGREDIENTS.len());
        for k in 0..n_ing {
            g.insert(
                recipe.clone(),
                iri(ns, "ingredient"),
                Term::lit(INGREDIENTS[(start + k) % INGREDIENTS.len()]),
            );
        }
        let text = if i % 3 == 0 {
            "Mélanger la farine et le beurre avec le sucre dans un bol"
        } else {
            "Mix the flour and the butter with the sugar in a bowl"
        };
        g.insert(recipe.clone(), iri(ns, "instructions"), Term::lit(text));
    }
    g
}

const NOBEL_CATEGORIES: [&str; 6] =
    ["Physics", "Chemistry", "Medicine", "Literature", "Peace", "Economics"];

/// Nobel-like graph: laureates with category/year/share and affiliation
/// paths; several multi-valued attributes.
pub fn nobel(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(4));
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "nobel";
    let n_univ = 40usize;
    for i in 0..cfg.scale {
        let laureate = iri(ns, format!("laureate{i}"));
        g.insert(laureate.clone(), ty.clone(), iri(ns, "Laureate"));
        g.insert(laureate.clone(), iri(ns, "name"), Term::lit(format!("Laureate {i}")));
        let cat = NOBEL_CATEGORIES[rng.gen_range(0..NOBEL_CATEGORIES.len())];
        g.insert(laureate.clone(), iri(ns, "category"), Term::lit(cat));
        g.insert(laureate.clone(), iri(ns, "year"), Term::int(1901 + (i % 120) as i64));
        g.insert(
            laureate.clone(),
            iri(ns, "share"),
            Term::int([1, 1, 2, 2, 3, 4][rng.gen_range(0..6)]),
        );
        if rng.gen_bool(0.9) {
            g.insert(
                laureate.clone(),
                iri(ns, "gender"),
                // Peace/Literature are far less male-dominated — a
                // skew the category × gender aggregate surfaces.
                Term::lit(
                    if matches!(cat, "Peace" | "Literature") && rng.gen_bool(0.35)
                        || rng.gen_bool(0.06)
                    {
                        "female"
                    } else {
                        "male"
                    },
                ),
            );
        }
        g.insert(
            laureate.clone(),
            iri(ns, "bornCountry"),
            Term::lit(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
        );
        for _ in 0..=usize::from(rng.gen_bool(0.25)) {
            let univ = iri(ns, format!("univ{}", rng.gen_range(0..n_univ)));
            g.insert(laureate.clone(), iri(ns, "affiliation"), univ.clone());
            g.insert(univ.clone(), ty.clone(), iri(ns, "University"));
            g.insert(
                univ.clone(),
                iri(ns, "country"),
                Term::lit(COUNTRIES[rng.gen_range(0..6)]),
            );
        }
        g.insert(
            laureate.clone(),
            iri(ns, "motivation"),
            Term::lit("for groundbreaking discoveries concerning fundamental structure"),
        );
    }
    g
}

const CARRIERS: [&str; 8] = ["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"];

/// Airline-like graph: the converted-relational dataset. "tuples are not
/// linked to each other, and thus no paths can be derived; it lacks
/// multi-valued attributes, thus no count derivation applies; the data is
/// mostly numeric, so keyword or language attributes are not derived"
/// (Experiment 1).
pub fn airline(cfg: &RealisticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(5));
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);
    let ns = "air";
    for i in 0..cfg.scale {
        let flight = iri(ns, format!("flight{i}"));
        g.insert(flight.clone(), ty.clone(), iri(ns, "Flight"));
        let carrier = CARRIERS[rng.gen_range(0..CARRIERS.len())];
        g.insert(flight.clone(), iri(ns, "carrier"), Term::lit(carrier));
        g.insert(flight.clone(), iri(ns, "month"), Term::int(1 + (i % 12) as i64));
        g.insert(flight.clone(), iri(ns, "dayOfWeek"), Term::int(1 + (i % 7) as i64));
        // Winter months and one low-cost carrier delay far more.
        let base = if (i % 12) < 2 { 40.0 } else { 8.0 };
        let carrier_penalty = if carrier == "NK" { 25.0 } else { 0.0 };
        let dep_delay = base + carrier_penalty + rng.gen::<f64>() * 15.0;
        g.insert(flight.clone(), iri(ns, "depDelay"), Term::num(dep_delay.round()));
        g.insert(
            flight.clone(),
            iri(ns, "arrDelay"),
            Term::num((dep_delay + rng.gen::<f64>() * 10.0 - 5.0).round()),
        );
        g.insert(flight.clone(), iri(ns, "distance"), Term::int(rng.gen_range(100..3000)));
    }
    g
}

/// All six graphs, scaled relative to each other like Table 2's sizes
/// (Airline ≫ DBLP > Foodista > CEOs ≈ NASA ≈ Nobel).
pub fn all(cfg: &RealisticConfig) -> Vec<RealGraph> {
    vec![
        RealGraph {
            name: "Airline",
            graph: airline(&RealisticConfig { scale: cfg.scale * 8, ..*cfg }),
        },
        RealGraph { name: "CEOs", graph: ceos(cfg) },
        RealGraph {
            name: "DBLP",
            graph: dblp(&RealisticConfig { scale: cfg.scale * 4, ..*cfg }),
        },
        RealGraph {
            name: "Foodista",
            graph: foodista(&RealisticConfig { scale: cfg.scale * 2, ..*cfg }),
        },
        RealGraph { name: "NASA", graph: nasa(cfg) },
        RealGraph { name: "Nobel", graph: nobel(cfg) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RealisticConfig {
        RealisticConfig { scale: 200, seed: 11 }
    }

    #[test]
    fn ceos_profile_is_heterogeneous() {
        let g = ceos(&cfg());
        let ceo_ty = g.dict.id_of(&iri("ceos", "CEO")).unwrap();
        let ceos = g.nodes_of_type(ceo_ty);
        assert_eq!(ceos.len(), 200);
        // Multi-valued nationality exists.
        let nat = g.dict.id_of(&iri("ceos", "nationality")).unwrap();
        let multi = ceos.iter().filter(|&&c| g.objects(c, nat).count() > 1).count();
        assert!(multi > 10, "only {multi} multi-nationality CEOs");
        // Some CEOs miss gender.
        let gender = g.dict.id_of(&iri("ceos", "gender")).unwrap();
        let missing = ceos.iter().filter(|&&c| g.objects(c, gender).count() == 0).count();
        assert!(missing > 10);
    }

    #[test]
    fn ceos_has_networth_outlier_for_angola() {
        let g = ceos(&RealisticConfig { scale: 500, seed: 3 });
        let ceo_ty = g.dict.id_of(&iri("ceos", "CEO")).unwrap();
        let nat = g.dict.id_of(&iri("ceos", "nationality")).unwrap();
        let nw = g.dict.id_of(&iri("ceos", "netWorth")).unwrap();
        let angola = g.dict.id_of(&Term::lit("Angola")).unwrap();
        let mut angolan = Vec::new();
        let mut other = Vec::new();
        for c in g.nodes_of_type(ceo_ty) {
            let worth: f64 =
                g.objects(c, nw).filter_map(|o| g.dict.term(o).numeric_value()).sum();
            if g.objects(c, nat).any(|n| n == angola) {
                angolan.push(worth);
            } else {
                other.push(worth);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(avg(&angolan) > 5.0 * avg(&other), "Angolan outlier missing");
    }

    #[test]
    fn nasa_has_launch_site_skew() {
        let g = nasa(&cfg());
        let site = g.dict.id_of(&iri("nasa", "launchsite")).unwrap();
        let mut counts = std::collections::HashMap::new();
        for &(_, o) in g.property_pairs(site) {
            *counts.entry(g.dict.display(o)).or_insert(0usize) += 1;
        }
        let plesetsk = counts.get("Plesetsk").copied().unwrap_or(0);
        let wallops = counts.get("Wallops").copied().unwrap_or(0);
        assert!(plesetsk > 2 * wallops, "Plesetsk {plesetsk} vs Wallops {wallops}");
    }

    #[test]
    fn airline_is_flat_and_single_valued() {
        let g = airline(&cfg());
        // No property of a flight points to another subject → no paths.
        let flight_ty_id = g.dict.id_of(&iri("air", "Flight")).unwrap();
        let rdf_type = g.rdf_type_id();
        for t in g.triples().to_vec() {
            if t.p == rdf_type {
                continue;
            }
            let object_is_subject = !g.outgoing(t.o).is_empty();
            assert!(!object_is_subject, "airline tuples must not link");
        }
        assert_eq!(g.nodes_of_type(flight_ty_id).len(), 200);
    }

    #[test]
    fn all_six_generated() {
        let graphs = all(&RealisticConfig { scale: 50, seed: 1 });
        assert_eq!(graphs.len(), 6);
        let names: Vec<_> = graphs.iter().map(|g| g.name).collect();
        assert_eq!(names, vec!["Airline", "CEOs", "DBLP", "Foodista", "NASA", "Nobel"]);
        // Airline is the largest, mirroring Table 2's ordering.
        let airline_size = graphs[0].graph.len();
        for g in &graphs[4..] {
            assert!(airline_size > g.graph.len());
        }
    }

    #[test]
    fn foodista_recipes_have_multi_valued_ingredients() {
        let g = foodista(&cfg());
        let ing = g.dict.id_of(&iri("food", "ingredient")).unwrap();
        let recipe_ty = g.dict.id_of(&iri("food", "Recipe")).unwrap();
        let multi = g
            .nodes_of_type(recipe_ty)
            .iter()
            .filter(|&&r| g.objects(r, ing).count() > 1)
            .count();
        assert_eq!(multi, 200, "every recipe has ≥ 2 ingredients");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = nobel(&cfg());
        let b = nobel(&cfg());
        assert_eq!(a.len(), b.len());
    }
}
