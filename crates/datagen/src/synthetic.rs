//! The Section 6.5 synthetic benchmark.
//!
//! "we designed a synthetic benchmark (a set of graphs) with fixed numbers
//! of facts |CFS|, N dimensions and M measures. All property values are
//! numeric. We ensure that a single CFS is found and that each dimension
//! D_i takes at most 100 values … We denote each graph by
//! |D₁|:|D₂|:…:|D_N|, the maximum number of distinct values along each
//! dimension. To obtain realistic distributions of the facts in this
//! multidimensional space, we randomly assign dimension values as in [1],
//! controlled by a sparsity parameter s ∈ [0, 1]. To ensure PGCube
//! correctness, each fact has only one value for each dimension."
//!
//! Sparsity semantics (after Agarwal et al. [1] / Zhao et al. [49]): `s` is
//! the target fraction of the full dimension cross-product that is occupied;
//! facts are placed uniformly over a sub-grid spanning `⌈|D_i|·s^{1/N}⌉`
//! values per dimension, so the occupied cell space is ≈ `s · Π|D_i|`.
//!
//! The generator emits both a raw RDF [`Graph`] (for full-pipeline
//! experiments) and pre-built [`ColumnSet`] storage (for cube-only
//! experiments that bypass the offline phase).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spade_rdf::{Graph, Term};
use spade_storage::{
    CategoricalColumn, CategoricalColumnBuilder, FactId, NumericColumn, NumericColumnBuilder,
    PreAggregated,
};

/// Parameters of one synthetic graph.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// `|CFS|` — number of facts.
    pub n_facts: usize,
    /// Distinct values per dimension (`|D₁|:…:|D_N|`), each ≤ 100 in the
    /// paper's runs so the attribute passes the good-dimension rule.
    pub dim_values: Vec<u32>,
    /// Number of numeric measures `M`.
    pub n_measures: usize,
    /// Sparsity coefficient `s ∈ [0, 1]`.
    pub sparsity: f64,
    /// Probability that a fact receives a *second* value on a dimension
    /// (0.0 = the paper's single-valued setting).
    pub multi_valued_prob: f64,
    /// RNG seed (experiments are reproducible).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_facts: 10_000,
            dim_values: vec![100, 100, 100],
            n_measures: 3,
            sparsity: 0.1,
            multi_valued_prob: 0.0,
            seed: 1,
        }
    }
}

impl SyntheticConfig {
    /// The paper's graph label, e.g. `100:5:2`.
    pub fn label(&self) -> String {
        self.dim_values.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(":")
    }
}

/// Ready-to-cube storage for one synthetic CFS.
pub struct ColumnSet {
    /// Dimension columns `d0..dN−1`.
    pub dims: Vec<CategoricalColumn>,
    /// Pre-aggregated measures `m0..mM−1`.
    pub measures: Vec<PreAggregated>,
    /// Raw measure columns (before pre-aggregation).
    pub raw_measures: Vec<NumericColumn>,
    /// `|CFS|`.
    pub n_facts: usize,
}

/// Per-dimension effective domain width under the sparsity model.
fn effective_widths(cfg: &SyntheticConfig) -> Vec<u32> {
    let n = cfg.dim_values.len() as f64;
    let shrink = cfg.sparsity.clamp(0.0001, 1.0).powf(1.0 / n);
    cfg.dim_values.iter().map(|&d| ((d as f64 * shrink).ceil() as u32).clamp(1, d)).collect()
}

/// Generates the column representation directly (no RDF round-trip).
pub fn generate_columns(cfg: &SyntheticConfig) -> ColumnSet {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let widths = effective_widths(cfg);

    let mut dim_builders: Vec<CategoricalColumnBuilder> = (0..cfg.dim_values.len())
        .map(|i| CategoricalColumnBuilder::new(format!("d{i}")))
        .collect();
    let mut measure_builders: Vec<NumericColumnBuilder> =
        (0..cfg.n_measures).map(|i| NumericColumnBuilder::new(format!("m{i}"))).collect();

    for fact in 0..cfg.n_facts as u32 {
        for (di, b) in dim_builders.iter_mut().enumerate() {
            let v = rng.gen_range(0..widths[di]);
            b.add(FactId(fact), dim_label(v));
            if cfg.multi_valued_prob > 0.0 && rng.gen_bool(cfg.multi_valued_prob) {
                let extra = rng.gen_range(0..widths[di]);
                if extra != v {
                    b.add(FactId(fact), dim_label(extra));
                }
            }
        }
        for (mi, b) in measure_builders.iter_mut().enumerate() {
            b.add(FactId(fact), measure_value(&mut rng, mi));
        }
    }

    let dims: Vec<CategoricalColumn> =
        dim_builders.into_iter().map(|b| b.build(cfg.n_facts)).collect();
    let raw_measures: Vec<NumericColumn> =
        measure_builders.into_iter().map(|b| b.build(cfg.n_facts)).collect();
    let measures = raw_measures.iter().map(NumericColumn::preaggregate).collect();
    ColumnSet { dims, measures, raw_measures, n_facts: cfg.n_facts }
}

/// Zero-padded label so lexicographic code order equals numeric order.
fn dim_label(v: u32) -> String {
    format!("v{v:05}")
}

/// Measure values: mostly well-behaved with a small heavy tail, so top-k
/// interestingness has signal to find.
fn measure_value<R: Rng>(rng: &mut R, measure_idx: usize) -> f64 {
    let base = (measure_idx as f64 + 1.0) * 10.0;
    let noise: f64 = rng.gen::<f64>() * 5.0;
    if rng.gen_bool(0.01) {
        base * 50.0 + noise // outlier tail
    } else {
        base + noise
    }
}

/// Generates the RDF graph form: one node per fact, typed `bench:Fact`,
/// with numeric-valued dimension and measure properties.
pub fn generate_graph(cfg: &SyntheticConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let widths = effective_widths(cfg);
    let mut g = Graph::new();
    let type_prop = Term::iri(spade_rdf::vocab::RDF_TYPE);
    let fact_type = Term::iri("http://bench/Fact");
    for fact in 0..cfg.n_facts {
        let node = Term::iri(format!("http://bench/f{fact}"));
        g.insert(node.clone(), type_prop.clone(), fact_type.clone());
        for (di, &w) in widths.iter().enumerate() {
            let v = rng.gen_range(0..w);
            g.insert(
                node.clone(),
                Term::iri(format!("http://bench/d{di}")),
                Term::int(v as i64),
            );
            if cfg.multi_valued_prob > 0.0 && rng.gen_bool(cfg.multi_valued_prob) {
                let extra = rng.gen_range(0..w);
                if extra != v {
                    g.insert(
                        node.clone(),
                        Term::iri(format!("http://bench/d{di}")),
                        Term::int(extra as i64),
                    );
                }
            }
        }
        for mi in 0..cfg.n_measures {
            g.insert(
                node.clone(),
                Term::iri(format!("http://bench/m{mi}")),
                Term::num(measure_value(&mut rng, mi)),
            );
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_shape_parameters() {
        let cfg = SyntheticConfig {
            n_facts: 500,
            dim_values: vec![100, 5, 2],
            n_measures: 4,
            sparsity: 1.0,
            ..Default::default()
        };
        let cols = generate_columns(&cfg);
        assert_eq!(cols.dims.len(), 3);
        assert_eq!(cols.measures.len(), 4);
        assert_eq!(cols.n_facts, 500);
        assert!(cols.dims[0].distinct_values() <= 100);
        assert!(cols.dims[1].distinct_values() <= 5);
        assert!(cols.dims[2].distinct_values() <= 2);
        for d in &cols.dims {
            assert_eq!(d.support(), 500, "single-valued: every fact has a value");
            assert!(!d.is_multi_valued());
        }
        for m in &cols.measures {
            assert_eq!(m.support(), 500);
            assert!(m.is_single_valued());
        }
        assert_eq!(cfg.label(), "100:5:2");
    }

    #[test]
    fn sparsity_shrinks_occupied_space() {
        let dense = generate_columns(&SyntheticConfig {
            n_facts: 5_000,
            dim_values: vec![100, 100],
            sparsity: 1.0,
            ..Default::default()
        });
        let sparse = generate_columns(&SyntheticConfig {
            n_facts: 5_000,
            dim_values: vec![100, 100],
            sparsity: 0.1,
            ..Default::default()
        });
        // s = 0.1 over 2 dims → ≈ 100·√0.1 ≈ 32 values per dim.
        assert!(sparse.dims[0].distinct_values() < dense.dims[0].distinct_values());
        assert!(sparse.dims[0].distinct_values() <= 34);
        assert!(sparse.dims[0].distinct_values() >= 25);
    }

    #[test]
    fn multi_valued_mode_creates_mvd_dimensions() {
        let cols = generate_columns(&SyntheticConfig {
            n_facts: 2_000,
            dim_values: vec![50, 50],
            multi_valued_prob: 0.3,
            ..Default::default()
        });
        for d in &cols.dims {
            assert!(d.is_multi_valued());
            let mv = d.multi_valued_facts() as f64 / 2_000.0;
            assert!(mv > 0.15 && mv < 0.45, "multi-valued share {mv}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SyntheticConfig { n_facts: 300, seed: 42, ..Default::default() };
        let a = generate_columns(&cfg);
        let b = generate_columns(&cfg);
        for (x, y) in a.dims.iter().zip(&b.dims) {
            for f in 0..300u32 {
                assert_eq!(x.codes_of(FactId(f)), y.codes_of(FactId(f)));
            }
        }
        let other = generate_columns(&SyntheticConfig { seed: 43, ..cfg });
        let same = (0..300u32)
            .all(|f| a.dims[0].codes_of(FactId(f)) == other.dims[0].codes_of(FactId(f)));
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn graph_form_matches_column_form_in_size() {
        let cfg = SyntheticConfig {
            n_facts: 100,
            dim_values: vec![10, 10],
            n_measures: 2,
            multi_valued_prob: 0.0,
            ..Default::default()
        };
        let g = generate_graph(&cfg);
        // Each fact: 1 type + 2 dims + 2 measures = 5 triples.
        assert_eq!(g.len(), 500);
        assert_eq!(g.subject_count(), 100);
    }

    #[test]
    fn measures_contain_outliers() {
        let cols = generate_columns(&SyntheticConfig {
            n_facts: 10_000,
            n_measures: 1,
            ..Default::default()
        });
        let (lo, hi) = cols.measures[0].global_bounds().unwrap();
        assert!(hi / lo > 10.0, "heavy tail expected: {lo}..{hi}");
    }
}
