//! The Figure 1 running-example graph, triple for triple.
//!
//! Nodes `n1` (Isabel dos Santos) and `n2` (Carlos Ghosn) with their
//! companies, political connections, and attributes exactly as drawn in
//! Figure 1(a): this is the graph on which Examples 1–3, Figure 4, and
//! Variations 1–2 are checked.

use spade_rdf::{vocab, Graph, Term};

const NS: &str = "http://ceos.example.org/";

fn iri(local: &str) -> Term {
    Term::iri(format!("{NS}{local}"))
}

/// Builds the Figure 1(a) CEOs graph.
pub fn ceos_figure1() -> Graph {
    let mut g = Graph::new();
    let ty = Term::iri(vocab::RDF_TYPE);

    // n1 — Isabel dos Santos.
    let n1 = iri("n1");
    g.insert(n1.clone(), ty.clone(), iri("CEO"));
    g.insert(n1.clone(), iri("name"), Term::lit("Isabel dos Santos"));
    g.insert(n1.clone(), iri("gender"), Term::lit("Female"));
    g.insert(n1.clone(), iri("netWorth"), Term::num(2.8e9));
    g.insert(n1.clone(), iri("age"), Term::int(47));
    g.insert(n1.clone(), iri("nationality"), Term::lit("Angola"));
    g.insert(n1.clone(), iri("countryOfOrigin"), Term::lit("Angola"));
    g.insert(n1.clone(), iri("politicalConnection"), iri("n4"));
    g.insert(n1.clone(), iri("company"), iri("n5_sonangol"));
    g.insert(n1.clone(), iri("company"), iri("n5_sodian"));

    // n4 — Josué Eduardo dos Santos, former president of Angola.
    let n4 = iri("n4");
    g.insert(n4.clone(), ty.clone(), iri("Politician"));
    g.insert(n4.clone(), iri("name"), Term::lit("Josué Eduardo dos Santos"));
    g.insert(n4.clone(), iri("role"), Term::lit("President"));

    // n5 — Sonangol (natural gas, Luanda) and Sodian (diamond).
    let sonangol = iri("n5_sonangol");
    g.insert(sonangol.clone(), ty.clone(), iri("Company"));
    g.insert(sonangol.clone(), iri("name"), Term::lit("Sonangol"));
    g.insert(sonangol.clone(), iri("area"), Term::lit("Natural gas"));
    g.insert(sonangol.clone(), iri("area"), Term::lit("Manufacturer"));
    g.insert(sonangol.clone(), iri("headquarters"), Term::lit("Luanda"));
    g.insert(
        sonangol.clone(),
        iri("description"),
        Term::lit("Sonangol oversees petroleum production"),
    );
    let sodian = iri("n5_sodian");
    g.insert(sodian.clone(), ty.clone(), iri("Company"));
    g.insert(sodian.clone(), iri("name"), Term::lit("Sodian"));
    g.insert(sodian.clone(), iri("area"), Term::lit("Diamond"));

    // n2 — Carlos Ghosn.
    let n2 = iri("n2");
    g.insert(n2.clone(), ty.clone(), iri("CEO"));
    g.insert(n2.clone(), iri("name"), Term::lit("Carlos Ghosn"));
    g.insert(n2.clone(), iri("netWorth"), Term::num(1.2e8));
    g.insert(n2.clone(), iri("age"), Term::int(66));
    for nat in ["Nigeria", "Lebanon", "France", "Brazil"] {
        g.insert(n2.clone(), iri("nationality"), Term::lit(nat));
    }
    g.insert(n2.clone(), iri("politicalConnection"), iri("n3"));
    g.insert(n2.clone(), iri("company"), iri("n6"));

    // n3 — Michel Aoun, president of Lebanon.
    let n3 = iri("n3");
    g.insert(n3.clone(), ty.clone(), iri("Politician"));
    g.insert(n3.clone(), iri("name"), Term::lit("Michel Aoun"));
    g.insert(n3.clone(), iri("role"), Term::lit("President"));

    // n6 — Renault-Nissan (automotive + manufacturer, Amsterdam).
    let n6 = iri("n6");
    g.insert(n6.clone(), ty.clone(), iri("Company"));
    g.insert(n6.clone(), iri("name"), Term::lit("Renault-Nissan"));
    g.insert(n6.clone(), iri("area"), Term::lit("Automotive"));
    g.insert(n6.clone(), iri("area"), Term::lit("Manufacturer"));
    g.insert(n6.clone(), iri("headquarters"), Term::lit("Amsterdam"));

    g
}

/// The example namespace, for looking nodes up in tests.
pub fn ns() -> &'static str {
    NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ceos_two_politicians_three_companies() {
        let g = ceos_figure1();
        let ceo = g.dict.id_of(&iri("CEO")).unwrap();
        let politician = g.dict.id_of(&iri("Politician")).unwrap();
        let company = g.dict.id_of(&iri("Company")).unwrap();
        assert_eq!(g.nodes_of_type(ceo).len(), 2);
        assert_eq!(g.nodes_of_type(politician).len(), 2);
        assert_eq!(g.nodes_of_type(company).len(), 3);
    }

    #[test]
    fn ghosn_has_four_nationalities_and_no_gender() {
        let g = ceos_figure1();
        let n2 = g.dict.id_of(&iri("n2")).unwrap();
        let nationality = g.dict.id_of(&iri("nationality")).unwrap();
        assert_eq!(g.objects(n2, nationality).count(), 4);
        assert!(g.dict.id_of(&iri("gender")).is_none_or(|p| g.objects(n2, p).count() == 0));
    }

    #[test]
    fn company_areas_reachable_by_path() {
        // The company/area path derivation (Example 3) must find, for n1:
        // {Natural gas, Manufacturer, Diamond} and for n2: {Automotive,
        // Manufacturer}.
        let g = ceos_figure1();
        let company = g.dict.id_of(&iri("company")).unwrap();
        let area = g.dict.id_of(&iri("area")).unwrap();
        let n1 = g.dict.id_of(&iri("n1")).unwrap();
        let mut areas: Vec<String> = g
            .objects(n1, company)
            .flat_map(|c| g.objects(c, area))
            .map(|a| g.dict.display(a))
            .collect();
        areas.sort();
        assert_eq!(areas, vec!["Diamond", "Manufacturer", "Natural gas"]);
    }
}
