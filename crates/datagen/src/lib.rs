//! Workload generators for the Spade experiments.
//!
//! The paper evaluates on six real RDF dumps (Table 2) and a synthetic
//! benchmark (Section 6.5). The dumps are not redistributable nor reachable
//! offline, so this crate provides:
//!
//! * [`synthetic`] — the Section 6.5 benchmark, faithfully parameterized:
//!   `|CFS|` facts, `N` dimensions with bounded distinct values, `M` numeric
//!   measures, value assignment controlled by a sparsity coefficient
//!   `s ∈ [0,1]` (as in [1]), single-valued by default ("To ensure PGCube
//!   correctness, each fact has only one value for each dimension") with an
//!   optional multi-valued extension for the error experiments;
//! * [`realistic`] — six *simulated* graphs whose structural profile
//!   (number of CFS types, multi-valued attribute share, link/path density,
//!   text vs. numeric property mix, injected outliers) mirrors what Table 2
//!   and Section 6 report for Airline, CEOs, DBLP, Foodista, NASA, and
//!   Nobel; see `DESIGN.md` for the substitution rationale;
//! * [`nt`] — N-Triples corpus generation (serialization + deterministic
//!   RDFS ontology overlays), feeding the `bench_ingest` offline-phase
//!   benchmark;
//! * [`corpus`] — the shared bench-corpus catalog (`bench_ingest`,
//!   `bench_store`, and `bench_engine` all measure the same named cases);
//! * [`mini`] — the exact running-example graph of Figure 1 (Dos Santos,
//!   Ghosn, their companies and political connections), used by examples
//!   and tests.

pub mod corpus;
pub mod mini;
pub mod nt;
pub mod realistic;
pub mod synthetic;

pub use mini::ceos_figure1;
pub use nt::{add_ontology, nt_corpus, to_ntriples};
pub use realistic::{RealGraph, RealisticConfig};
pub use synthetic::{ColumnSet, SyntheticConfig};
