//! The shared bench-corpus catalog.
//!
//! `bench_ingest`, `bench_store`, and `bench_engine` used to each carry a
//! private copy of "which corpora do we measure on" — the Table-2-like
//! N-Triples cases (graph + RDFS overlay depth) and the Section-6.5
//! synthetic cube cases. This module is the single source of truth: every
//! bench iterates the same catalog, so their JSON artifacts stay directly
//! comparable across PRs.

use crate::{nt_corpus, RealisticConfig, SyntheticConfig};

/// One N-Triples offline-phase corpus: a named Table-2 simulated graph with
/// a deterministic RDFS ontology overlay (see [`crate::nt::add_ontology`]).
#[derive(Clone, Copy, Debug)]
pub struct NtCase {
    /// Bench-row name, stable across PRs (`<dataset>_ont<depth>`).
    pub name: &'static str,
    /// The simulated Table-2 dataset to generate.
    pub dataset: &'static str,
    /// Multiplier on the caller's `--scale`.
    pub scale_mul: usize,
    /// Subclass-chain depth of the RDFS overlay.
    pub ontology_depth: usize,
}

/// The standard offline-phase corpora: heterogeneous/path-rich with a
/// shallow ontology, type-heavy with a mid ontology, and a
/// saturation-dominated deep-subclass case.
pub const NT_CASES: [NtCase; 3] = [
    NtCase { name: "ceos_ont4", dataset: "CEOs", scale_mul: 1, ontology_depth: 4 },
    NtCase { name: "nasa_ont8", dataset: "NASA", scale_mul: 1, ontology_depth: 8 },
    NtCase { name: "nobel_ont24", dataset: "Nobel", scale_mul: 1, ontology_depth: 24 },
];

impl NtCase {
    /// Generates this case's N-Triples text at the given scale and seed.
    pub fn generate(&self, scale: usize, seed: u64) -> String {
        let cfg = RealisticConfig { scale: scale * self.scale_mul, seed };
        nt_corpus(self.dataset, &cfg, self.ontology_depth)
    }
}

/// One synthetic cube-evaluation case (Section 6.5 parameterization).
#[derive(Clone, Copy, Debug)]
pub struct SyntheticCase {
    /// Bench-row name, stable across PRs.
    pub name: &'static str,
    /// Distinct values per dimension.
    pub dim_values: [u32; 3],
    /// Probability of a fact being multi-valued in a dimension.
    pub multi_valued_prob: f64,
    /// MVDCube chunking override (`None` = whole domains).
    pub chunk_size: Option<u32>,
}

/// The standard cube-engine cases: single-valued, multi-valued, and a
/// chunked configuration near the auto heuristic's memory-bounded operating
/// point (⌈|D|/4⌉ ≈ 13 for 50×20×10).
pub const SYNTHETIC_CASES: [SyntheticCase; 3] = [
    SyntheticCase {
        name: "single_valued_100x10x5",
        dim_values: [100, 10, 5],
        multi_valued_prob: 0.0,
        chunk_size: None,
    },
    SyntheticCase {
        name: "multi_valued_100x10x5",
        dim_values: [100, 10, 5],
        multi_valued_prob: 0.3,
        chunk_size: None,
    },
    SyntheticCase {
        name: "chunked_50x20x10",
        dim_values: [50, 20, 10],
        multi_valued_prob: 0.1,
        chunk_size: Some(12),
    },
];

impl SyntheticCase {
    /// The generator configuration for this case at the given fact count
    /// and seed (3 measures, sparsity 0.1 — the catalog-wide constants).
    pub fn config(&self, n_facts: usize, seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            n_facts,
            dim_values: self.dim_values.to_vec(),
            n_measures: 3,
            sparsity: 0.1,
            multi_valued_prob: self.multi_valued_prob,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_cases_generate_parseable_corpora() {
        for case in &NT_CASES {
            let nt = case.generate(15, 3);
            let g = spade_rdf::parse_ntriples(&nt).expect(case.name);
            assert!(g.len() > 20, "{}: {} triples", case.name, g.len());
        }
    }

    #[test]
    fn synthetic_cases_scale_with_facts() {
        for case in &SYNTHETIC_CASES {
            let cfg = case.config(500, 7);
            assert_eq!(cfg.n_facts, 500);
            assert_eq!(cfg.dim_values.len(), 3);
            let cols = crate::synthetic::generate_columns(&cfg);
            assert_eq!(cols.n_facts, 500);
        }
    }
}
