//! Deterministic fan-out of independent work items over a thread pool.
//!
//! Both the online Aggregate Evaluation step (per-CFS / per-lattice) and the
//! offline ingestion pipeline (per-chunk parsing, chunked sorting, the
//! semi-naive saturation scan) decompose into independent units. This crate
//! supplies the primitives that exploit this without an external dependency:
//! [`map`], an ordered parallel map built on `std::thread::scope` (the build
//! environment vendors no external crates, so there is no rayon; scoped
//! threads give the same fan-out for coarse-grained items), plus the
//! [`chunk_ranges`] / [`par_sort`] helpers the ingestion subsystem shares.
//!
//! **Determinism:** results are returned in input order, whatever the
//! completion order, so a fold over the output is bit-identical to the
//! serial fold — the property the `threads`-determinism tests pin down.
//! Work is split by *data size*, never by thread count, so every thread
//! count produces the same chunk boundaries and therefore the same merged
//! output.

pub mod budget;
pub mod fault;

pub use budget::{Budget, CancelReason, Cancelled};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a configured thread count: `0` means "all available cores".
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        configured
    }
}

/// Applies `f` to every item, using up to `threads` worker threads
/// (`0` = auto), and returns the results **in input order**.
///
/// Items are claimed by an atomic cursor, so long items do not convoy
/// behind short ones. With one effective thread (or zero/one items) the
/// map runs inline on the caller's thread — the serial path and the
/// parallel path execute the exact same per-item code.
///
/// A panic in `f` propagates to the caller once all workers have stopped.
pub fn map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed without a result")
        })
        .collect()
}

/// Fallible variant of [`map`]: applies `f` to every item and returns the
/// results **in input order**, or the error of the earliest (by input
/// index) item observed to fail.
///
/// On the `Ok` path this performs the exact same per-item calls in the
/// exact same claim order as [`map`], so results are bit-identical to the
/// infallible fan-out — the property the cancellation plan-invariance
/// tests pin. On the first `Err` a shared abort flag stops workers from
/// *claiming* further items (items already claimed run to completion), so
/// an erroring fan-out unwinds within one item's latency instead of
/// draining the whole queue.
///
/// When several items fail concurrently the error with the smallest input
/// index among the *completed* items is returned — callers using this for
/// cancellation get homogeneous errors anyway.
pub fn try_map<T, R, E, F>(items: Vec<T>, threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<R, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("work item claimed twice");
                let out = f(item);
                if out.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(out);
            });
        }
    });
    // Scan in input order: on success every slot is filled; after an abort
    // the first empty slot (if any) comes after the earliest completed
    // error, because indices are claimed in increasing order.
    let mut ok = Vec::with_capacity(n);
    for slot in results {
        match slot.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
            Some(Ok(r)) => ok.push(r),
            Some(Err(e)) => return Err(e),
            None => unreachable!("unfilled slot before any error in claim order"),
        }
    }
    Ok(ok)
}

/// Splits a thread budget across a nested fan-out — an outer level of
/// `outer_items` independent units, each of which fans out further — so the
/// total worker count stays at the budget instead of `budget²`
/// (oversubscription). Returns `(outer, inner)` worker counts with
/// `outer · inner ≤ resolve_threads(threads)` and both at least 1.
///
/// The split is deterministic in `(threads, outer_items)` only; it never
/// affects results because both fan-out levels merge in input order.
pub fn split_budget(threads: usize, outer_items: usize) -> (usize, usize) {
    let resolved = resolve_threads(threads);
    let outer = resolved.min(outer_items.max(1));
    (outer, (resolved / outer).max(1))
}

/// Splits `weights.len()` items into contiguous `(start, end)` ranges of
/// roughly equal total weight: at most `max_ranges` ranges, each carrying at
/// least `min_weight` (except possibly the last). Boundaries depend only on
/// the weights and the two knobs — never on the thread count — so a fan-out
/// over the ranges merged in range order is bit-identical for every thread
/// count (the same data-not-threads splitting rule as [`chunk_ranges`],
/// generalized to uneven item costs).
pub fn weighted_ranges(
    weights: &[u64],
    max_ranges: usize,
    min_weight: u64,
) -> Vec<(usize, usize)> {
    let total: u64 = weights.iter().sum();
    let target = total.div_ceil(max_ranges.max(1) as u64).max(min_weight).max(1);
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= target {
            out.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    // The tail extends the last range when the cap is reached, so the
    // "at most `max_ranges`" contract holds exactly.
    if start < weights.len() {
        if out.len() >= max_ranges.max(1) {
            out.last_mut().expect("cap reached implies a range exists").1 = weights.len();
        } else {
            out.push((start, weights.len()));
        }
    }
    out
}

/// Splits `len` items into contiguous `(start, end)` ranges of at most
/// `chunk_size` items. Boundaries depend only on `len` and `chunk_size`,
/// never on the thread count — the keystone of deterministic parallel
/// ingestion (chunk outputs are merged in chunk order).
pub fn chunk_ranges(len: usize, chunk_size: usize) -> Vec<(usize, usize)> {
    let chunk = chunk_size.max(1);
    let mut out = Vec::with_capacity(len / chunk + 1);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push((start, end));
        start = end;
    }
    out
}

/// Sorts `items` with a chunked parallel merge sort: fixed-size runs are
/// sorted concurrently via [`map`], then merged pairwise. The result equals
/// `items.sort_unstable()` followed by a stabilization — we sort with a
/// total order, so the output is identical for every thread count (and to
/// the serial sort).
pub fn par_sort<T: Ord + Send + Sync + Copy>(items: Vec<T>, threads: usize) -> Vec<T> {
    const RUN: usize = 1 << 15;
    if items.len() <= RUN || resolve_threads(threads) <= 1 {
        let mut items = items;
        items.sort_unstable();
        return items;
    }
    let ranges = chunk_ranges(items.len(), RUN);
    let items = &items;
    let mut runs: Vec<Vec<T>> = map(ranges, threads, |(a, b)| {
        let mut run = items[a..b].to_vec();
        run.sort_unstable();
        run
    });
    // Pairwise merge passes; each pass halves the run count. Merges of one
    // pass are independent, so they also fan out.
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len() / 2 + 1);
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => pairs.push((a, Some(b))),
                None => pairs.push((a, None)),
            }
        }
        runs = map(pairs, threads, |(a, b)| match b {
            None => a,
            Some(b) => merge_sorted(a, b),
        });
    }
    runs.pop().unwrap_or_default()
}

fn merge_sorted<T: Ord + Copy>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = map(items.clone(), threads, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(map(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let out = map(vec![1, 2, 3], 0, |x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn borrows_captured_state() {
        let base = [10, 20, 30];
        let out = map(vec![0usize, 1, 2], 2, |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = map(vec![1, 2, 3, 4], 2, |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn try_map_ok_matches_map() {
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 8] {
            let out: Result<Vec<usize>, ()> = try_map(items.clone(), threads, |i| Ok(i * 3));
            assert_eq!(out.unwrap(), map(items.clone(), threads, |i| i * 3));
        }
        let empty: Result<Vec<u32>, ()> = try_map(Vec::new(), 4, Ok);
        assert_eq!(empty.unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn try_map_returns_earliest_error() {
        for threads in [1, 2, 8] {
            let out = try_map((0..100).collect::<Vec<_>>(), threads, |i| {
                if i % 10 == 7 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            // With 1 thread the earliest failure wins outright; in the
            // parallel case any reported error is a real failing item.
            let err = out.unwrap_err();
            assert_eq!(err % 10, 7);
            if threads == 1 {
                assert_eq!(err, 7);
            }
        }
    }

    #[test]
    fn try_map_aborts_early() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out: Result<Vec<()>, ()> = try_map((0..10_000).collect(), 2, |i: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(())
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
                Ok(())
            }
        });
        assert!(out.is_err());
        assert!(
            calls.load(Ordering::Relaxed) < 10_000,
            "abort flag should stop workers from draining the whole queue"
        );
    }

    #[test]
    fn split_budget_never_oversubscribes() {
        for threads in [1usize, 2, 3, 8, 16] {
            for items in [0usize, 1, 2, 5, 100] {
                let (outer, inner) = split_budget(threads, items);
                assert!(outer >= 1 && inner >= 1);
                assert!(outer * inner <= threads.max(1), "{threads} over {items}");
                assert!(outer <= items.max(1));
            }
        }
        assert_eq!(split_budget(8, 2), (2, 4));
        assert_eq!(split_budget(8, 3), (3, 2));
        assert_eq!(split_budget(1, 10), (1, 1));
    }

    #[test]
    fn weighted_ranges_cover_and_balance() {
        // Uniform weights behave like chunk_ranges.
        let w = vec![1u64; 10];
        let r = weighted_ranges(&w, 5, 1);
        assert_eq!(r, vec![(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]);
        // A heavy item forms its own range; coverage is exact and ordered.
        let w = vec![1u64, 100, 1, 1, 1, 1];
        let r = weighted_ranges(&w, 4, 1);
        let mut expect = 0;
        for &(a, b) in &r {
            assert_eq!(a, expect);
            assert!(b > a);
            expect = b;
        }
        assert_eq!(expect, w.len());
        assert!(r.len() <= 4);
        // The cap is exact even when a tail remains after `max_ranges`
        // closes (only reachable with zero-weight tail items, since k
        // closed ranges consume ≥ k·target weight): the tail extends the
        // last range instead of opening a max_ranges+1-th one.
        assert_eq!(weighted_ranges(&[1u64, 1, 1, 1, 1], 2, 1), vec![(0, 3), (3, 5)]);
        assert_eq!(weighted_ranges(&[2u64, 0, 0], 1, 1), vec![(0, 3)]);
        assert_eq!(weighted_ranges(&[2u64, 2, 0], 2, 1), vec![(0, 1), (1, 3)]);
        // min_weight coalesces small items into one range.
        assert_eq!(weighted_ranges(&[1u64; 8], 8, 1_000), vec![(0, 8)]);
        // Empty input → no ranges.
        assert!(weighted_ranges(&[], 4, 1).is_empty());
        // Zero-weight tail items are still covered.
        let r = weighted_ranges(&[5u64, 0, 0], 4, 1);
        assert_eq!(r.last().map(|&(_, b)| b), Some(3));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, chunk) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (100, 7)] {
            let ranges = chunk_ranges(len, chunk);
            let mut expect = 0;
            for &(a, b) in &ranges {
                assert_eq!(a, expect);
                assert!(b > a && b - a <= chunk);
                expect = b;
            }
            assert_eq!(expect, len);
        }
    }

    #[test]
    fn par_sort_matches_serial_sort() {
        let mut v: Vec<u64> =
            (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        for threads in [1, 2, 8] {
            let sorted = par_sort(v.clone(), threads);
            let mut expect = v.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect);
        }
        v.truncate(10);
        assert_eq!(par_sort(v.clone(), 4), {
            v.sort_unstable();
            v
        });
    }
}
