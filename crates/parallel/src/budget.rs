//! Cooperative request budgets: a shared deadline + cancellation flag that
//! long-running pipeline stages poll at their natural batch boundaries.
//!
//! A [`Budget`] is created once per request (or [`Budget::unlimited`] for
//! offline runs) and threaded **by reference** through every stage. Stages
//! call [`Budget::check`] between units of work — per CFS candidate, per
//! early-stop batch, per region-shard chunk flush — and unwind with the
//! typed [`Cancelled`] error when the deadline passed or the request was
//! cancelled. Checks are *observation only*: they never reorder, skip, or
//! otherwise alter any computation, so results stay bit-identical to the
//! budget-less path whenever no cancellation fires (the plan-invariance
//! property the determinism suites pin).
//!
//! The struct also keeps a **periodic check counter** ([`Budget::checks`]):
//! the number of polls performed so far, exposed so servers can reason
//! about cancellation latency (time between expiry and unwind is bounded
//! by the longest gap between two checks).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a request was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The deadline passed before the work completed.
    DeadlineExceeded,
    /// [`Budget::cancel`] was called (client gone, shutdown, …).
    Cancelled,
}

/// The typed error a budgeted stage unwinds with. Carries the reason and
/// how many budget checks had run when cancellation was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the work was cut short.
    pub reason: CancelReason,
    /// Value of the check counter at the failing poll.
    pub checks: u64,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            CancelReason::DeadlineExceeded => {
                write!(f, "request deadline exceeded after {} budget checks", self.checks)
            }
            CancelReason::Cancelled => {
                write!(f, "request cancelled after {} budget checks", self.checks)
            }
        }
    }
}

impl std::error::Error for Cancelled {}

/// A shared request budget: optional deadline, cancellation flag, and the
/// periodic check counter. `Sync` by construction — one instance is shared
/// by every worker thread of a request's fan-outs.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    checks: AtomicU64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never expires and is not cancelled — the offline /
    /// whole-pipeline path. [`Budget::check`] on it always succeeds.
    pub fn unlimited() -> Budget {
        Budget { deadline: None, cancelled: AtomicBool::new(false), checks: AtomicU64::new(0) }
    }

    /// A budget that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Budget {
        Budget::until(Instant::now() + timeout)
    }

    /// A budget that expires at `deadline`.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            cancelled: AtomicBool::new(false),
            checks: AtomicU64::new(0),
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Cancels the budget: every subsequent [`Budget::check`] fails.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the budget is cancelled or past its deadline (does not
    /// count as a check).
    pub fn is_exhausted(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Number of [`Budget::check`] polls performed so far.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Polls the budget: `Ok(())` to continue, `Err(Cancelled)` to unwind.
    ///
    /// Cheap enough for per-batch granularity (one relaxed atomic add, one
    /// relaxed load, and — only when a deadline exists — one monotonic
    /// clock read); not meant for per-cell hot loops, which should check
    /// at their enclosing chunk boundary instead.
    pub fn check(&self) -> Result<(), Cancelled> {
        let checks = self.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(Cancelled { reason: CancelReason::Cancelled, checks });
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Cancelled { reason: CancelReason::DeadlineExceeded, checks });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_cancels() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            b.check().unwrap();
        }
        assert_eq!(b.checks(), 1000);
        assert!(!b.is_exhausted());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn expired_deadline_fails_checks() {
        let b = Budget::with_deadline(Duration::ZERO);
        let e = b.check().unwrap_err();
        assert_eq!(e.reason, CancelReason::DeadlineExceeded);
        assert_eq!(e.checks, 1);
        assert!(b.is_exhausted());
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn future_deadline_allows_checks() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        b.check().unwrap();
        assert!(!b.is_exhausted());
    }

    #[test]
    fn cancel_flips_every_thread() {
        let b = Budget::unlimited();
        b.check().unwrap();
        b.cancel();
        let e = b.check().unwrap_err();
        assert_eq!(e.reason, CancelReason::Cancelled);
        assert!(b.is_exhausted());
        // Observed from another thread too.
        std::thread::scope(|s| {
            s.spawn(|| assert!(b.check().is_err()));
        });
    }
}
