//! Test-only fault injection at named sites, driven by the `SPADE_FAULT`
//! environment variable or programmatically via [`set_spec`].
//!
//! The spec is a `;`-separated list of `site=action` pairs, where `action`
//! is one of:
//!
//! * `panic` — [`fire`] panics with a recognisable message,
//! * `stall:<ms>` — [`fire`] sleeps for `<ms>` milliseconds
//!   ([`fire_with_budget`] sleeps in small slices and returns early once
//!   the budget is exhausted, like a real check-instrumented loop would),
//! * `io` — [`io_error`] returns `Some(std::io::Error)`; other fire
//!   functions ignore the site.
//!
//! Example: `SPADE_FAULT='cfs=stall:5000;serve.explore=panic'`.
//!
//! Instrumented production code calls [`fire`] / [`fire_with_budget`] /
//! [`io_error`] at a handful of named sites; when no spec is armed these
//! are a single relaxed atomic load. The armed spec is process-global, so
//! tests that use [`set_spec`] must serialise themselves (the chaos suite
//! holds a mutex for this).

use crate::budget::Budget;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// What to do when an armed site fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Panic,
    Stall(u64),
    Io,
}

struct State {
    armed: AtomicBool,
    faults: RwLock<Vec<(String, Action)>>,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| {
        let faults =
            std::env::var("SPADE_FAULT").ok().map(|s| parse_spec(&s)).unwrap_or_default();
        State { armed: AtomicBool::new(!faults.is_empty()), faults: RwLock::new(faults) }
    })
}

fn parse_spec(spec: &str) -> Vec<(String, Action)> {
    let mut faults = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((site, action)) = entry.split_once('=') else { continue };
        let action = match action.trim() {
            "panic" => Action::Panic,
            "io" => Action::Io,
            a => match a.strip_prefix("stall:").and_then(|ms| ms.parse::<u64>().ok()) {
                Some(ms) => Action::Stall(ms),
                None => continue, // unknown actions are ignored, not fatal
            },
        };
        faults.push((site.trim().to_string(), action));
    }
    faults
}

/// Arms (or with `None` disarms) a fault spec for the whole process,
/// overriding whatever `SPADE_FAULT` said. Tests that call this must not
/// run concurrently with each other.
pub fn set_spec(spec: Option<&str>) {
    let s = state();
    let faults = spec.map(parse_spec).unwrap_or_default();
    s.armed.store(!faults.is_empty(), Ordering::SeqCst);
    *s.faults.write().unwrap_or_else(|e| e.into_inner()) = faults;
}

fn lookup(site: &str) -> Option<Action> {
    let s = state();
    if !s.armed.load(Ordering::Relaxed) {
        return None;
    }
    let faults = s.faults.read().unwrap_or_else(|e| e.into_inner());
    faults.iter().find(|(name, _)| name == site).map(|&(_, action)| action)
}

fn stall(ms: u64, budget: Option<&Budget>) {
    // Sleep in small slices so a cancelled budget cuts the stall short,
    // the way a genuine check-instrumented loop would.
    const SLICE: Duration = Duration::from_millis(5);
    let mut remaining = Duration::from_millis(ms);
    while !remaining.is_zero() {
        if budget.is_some_and(|b| b.is_exhausted()) {
            return;
        }
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
}

/// Fires `site` if armed: panics or stalls per the spec (`io` entries are
/// ignored here). No-op when nothing is armed.
pub fn fire(site: &str) {
    fire_with_budget(site, None);
}

/// Like [`fire`], but a stall observes `budget` and ends early once the
/// budget is exhausted.
pub fn fire_with_budget(site: &str, budget: Option<&Budget>) {
    match lookup(site) {
        Some(Action::Panic) => panic!("injected fault: panic at site {site:?}"),
        Some(Action::Stall(ms)) => stall(ms, budget),
        Some(Action::Io) | None => {}
    }
}

/// Returns an injected `std::io::Error` if `site` is armed with `io`.
pub fn io_error(site: &str) -> Option<std::io::Error> {
    match lookup(site) {
        Some(Action::Io) => {
            Some(std::io::Error::other(format!("injected fault: io error at site {site:?}")))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The spec is process-global; run everything in one test to avoid
    // cross-test interference within this module.
    #[test]
    fn spec_parsing_and_firing() {
        assert_eq!(
            parse_spec("a=panic; b = stall:250 ;c=io;junk;d=stall:x"),
            vec![
                ("a".to_string(), Action::Panic),
                ("b".to_string(), Action::Stall(250)),
                ("c".to_string(), Action::Io),
            ]
        );

        set_spec(Some("boom=panic;slow=stall:30;disk=io"));
        assert!(std::panic::catch_unwind(|| fire("boom")).is_err());
        fire("unarmed-site"); // no-op
        fire("disk"); // io entries don't panic or stall via fire()
        assert!(io_error("disk").is_some());
        assert!(io_error("boom").is_none());

        let t = std::time::Instant::now();
        fire("slow");
        assert!(t.elapsed() >= Duration::from_millis(25));

        // A cancelled budget cuts a stall short.
        let b = Budget::unlimited();
        b.cancel();
        let t = std::time::Instant::now();
        set_spec(Some("slow=stall:60000"));
        fire_with_budget("slow", Some(&b));
        assert!(t.elapsed() < Duration::from_secs(5));

        set_spec(None);
        fire("boom"); // disarmed: no panic
        assert!(io_error("disk").is_none());
    }
}
