//! The CFS single-column table: graph node ids ↔ dense fact ids.

use spade_rdf::TermId;
use std::collections::HashMap;

/// A dense identifier of a candidate fact within one CFS (`0..|CFS|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

impl FactId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The candidate fact set table: assigns each member node a dense id.
///
/// Fact ids follow the insertion order of nodes, which downstream code keeps
/// sorted so bitmaps and measure columns iterate in the same order.
#[derive(Clone, Debug, Default)]
pub struct FactTable {
    nodes: Vec<TermId>,
    index: HashMap<TermId, FactId>,
}

impl FactTable {
    /// Builds the table from member nodes (duplicates are ignored).
    pub fn new(members: impl IntoIterator<Item = TermId>) -> Self {
        let mut table = FactTable::default();
        for node in members {
            table.add(node);
        }
        table
    }

    /// Adds one node; returns its fact id (existing or fresh).
    pub fn add(&mut self, node: TermId) -> FactId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = FactId(u32::try_from(self.nodes.len()).expect("CFS larger than 2^32 facts"));
        self.nodes.push(node);
        self.index.insert(node, id);
        id
    }

    /// The fact id of `node`, if it belongs to the CFS.
    pub fn fact_of(&self, node: TermId) -> Option<FactId> {
        self.index.get(&node).copied()
    }

    /// The graph node of `fact`.
    pub fn node_of(&self, fact: FactId) -> TermId {
        self.nodes[fact.index()]
    }

    /// Number of facts `|CFS|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the CFS is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(fact, node)` pairs in fact-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, TermId)> + '_ {
        self.nodes.iter().enumerate().map(|(i, &n)| (FactId(i as u32), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_insertion_order() {
        let t = FactTable::new([TermId(10), TermId(5), TermId(99)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.fact_of(TermId(10)), Some(FactId(0)));
        assert_eq!(t.fact_of(TermId(5)), Some(FactId(1)));
        assert_eq!(t.node_of(FactId(2)), TermId(99));
        assert_eq!(t.fact_of(TermId(1)), None);
    }

    #[test]
    fn duplicates_keep_first_id() {
        let mut t = FactTable::default();
        let a = t.add(TermId(7));
        let b = t.add(TermId(7));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_matches_ids() {
        let t = FactTable::new([TermId(3), TermId(1)]);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(FactId(0), TermId(3)), (FactId(1), TermId(1))]);
    }
}
