//! Multi-valued categorical attribute columns (dimension storage).
//!
//! RDF's flexibility means a fact "may have multiple values along a given
//! dimension" and "some CFs may miss dimensions" (Section 2). A
//! [`CategoricalColumn`] therefore maps each dense fact id to *zero or more*
//! distinct value codes, in CSR (offsets + values) layout, along with the
//! attribute's value dictionary. Value codes are assigned in sorted label
//! order, giving the deterministic dimension-value ordering the array
//! representation of ArrayCube/MVDCube requires ("the distinct values of
//! each dimension are ordered", Section 4.1).

use crate::fact_table::FactId;
use std::collections::HashMap;

/// Builder that accumulates `(fact, label)` pairs before code assignment.
#[derive(Clone, Debug, Default)]
pub struct CategoricalColumnBuilder {
    name: String,
    pairs: Vec<(u32, String)>,
}

impl CategoricalColumnBuilder {
    /// Starts a column named after the attribute.
    pub fn new(name: impl Into<String>) -> Self {
        CategoricalColumnBuilder { name: name.into(), pairs: Vec::new() }
    }

    /// Records that `fact` has `label` as one of its values.
    pub fn add(&mut self, fact: FactId, label: impl Into<String>) {
        self.pairs.push((fact.0, label.into()));
    }

    /// Finalizes into a [`CategoricalColumn`] over `n_facts` facts.
    pub fn build(self, n_facts: usize) -> CategoricalColumn {
        // Sorted, deduplicated label dictionary.
        let mut labels: Vec<String> = self.pairs.iter().map(|(_, l)| l.clone()).collect();
        labels.sort_unstable();
        labels.dedup();
        let code_of: HashMap<&str, u32> =
            labels.iter().enumerate().map(|(i, l)| (l.as_str(), i as u32)).collect();

        // Per-fact distinct codes.
        let mut per_fact: Vec<Vec<u32>> = vec![Vec::new(); n_facts];
        for (fact, label) in &self.pairs {
            let fact = *fact as usize;
            assert!(fact < n_facts, "fact id {fact} out of range (n_facts={n_facts})");
            per_fact[fact].push(code_of[label.as_str()]);
        }
        let mut offsets = Vec::with_capacity(n_facts + 1);
        let mut values = Vec::with_capacity(self.pairs.len());
        offsets.push(0u32);
        for codes in &mut per_fact {
            codes.sort_unstable();
            codes.dedup();
            values.extend_from_slice(codes);
            offsets.push(values.len() as u32);
        }
        CategoricalColumn { name: self.name, labels, offsets, values }
    }
}

/// A finalized multi-valued categorical column.
#[derive(Clone, Debug)]
pub struct CategoricalColumn {
    name: String,
    labels: Vec<String>,
    offsets: Vec<u32>,
    values: Vec<u32>,
}

impl CategoricalColumn {
    /// Convenience constructor from per-fact value lists (tests/generators).
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<&str>]) -> Self {
        let mut b = CategoricalColumnBuilder::new(name);
        for (i, row) in rows.iter().enumerate() {
            for v in row {
                b.add(FactId(i as u32), *v);
            }
        }
        b.build(rows.len())
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The distinct value codes of `fact` (empty = missing dimension).
    pub fn codes_of(&self, fact: FactId) -> &[u32] {
        let i = fact.index();
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of distinct values of the attribute.
    pub fn distinct_values(&self) -> usize {
        self.labels.len()
    }

    /// The label of a value code.
    pub fn label(&self, code: u32) -> &str {
        &self.labels[code as usize]
    }

    /// Number of facts covered by the column.
    pub fn n_facts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of facts having at least one value — the attribute's support
    /// (Section 3, Step 2).
    pub fn support(&self) -> usize {
        (0..self.n_facts()).filter(|&i| !self.codes_of(FactId(i as u32)).is_empty()).count()
    }

    /// Number of facts having *more than one* value — the multi-valued fact
    /// count the online analysis records, and the trigger for Lemma 1.
    pub fn multi_valued_facts(&self) -> usize {
        (0..self.n_facts()).filter(|&i| self.codes_of(FactId(i as u32)).len() > 1).count()
    }

    /// `true` when some fact has several values (the attribute is in `MD`).
    pub fn is_multi_valued(&self) -> bool {
        self.multi_valued_facts() > 0
    }

    /// Total number of `(fact, value)` pairs.
    pub fn pair_count(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_follow_sorted_label_order() {
        // Ghosn's four nationalities from Figure 1.
        let col = CategoricalColumn::from_rows(
            "nationality",
            &[vec!["Angola"], vec!["Nigeria", "Lebanon", "France", "Brazil"]],
        );
        assert_eq!(col.distinct_values(), 5);
        // Sorted: Angola(0), Brazil(1), France(2), Lebanon(3), Nigeria(4).
        assert_eq!(col.label(0), "Angola");
        assert_eq!(col.label(4), "Nigeria");
        assert_eq!(col.codes_of(FactId(0)), &[0]);
        assert_eq!(col.codes_of(FactId(1)), &[1, 2, 3, 4]);
    }

    #[test]
    fn missing_and_duplicate_values() {
        let mut b = CategoricalColumnBuilder::new("gender");
        b.add(FactId(0), "Female");
        b.add(FactId(0), "Female"); // duplicate triple: set semantics
        let col = b.build(3);
        assert_eq!(col.codes_of(FactId(0)), &[0]);
        assert!(col.codes_of(FactId(1)).is_empty());
        assert_eq!(col.support(), 1);
        assert_eq!(col.multi_valued_facts(), 0);
        assert!(!col.is_multi_valued());
    }

    #[test]
    fn multi_valued_statistics() {
        let col = CategoricalColumn::from_rows(
            "area",
            &[
                vec!["Diamond", "Manufacturer", "Natural gas"],
                vec!["Automotive", "Manufacturer"],
                vec![],
            ],
        );
        assert_eq!(col.support(), 2);
        assert_eq!(col.multi_valued_facts(), 2);
        assert!(col.is_multi_valued());
        assert_eq!(col.pair_count(), 5);
        assert_eq!(col.n_facts(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_fact() {
        let mut b = CategoricalColumnBuilder::new("x");
        b.add(FactId(5), "v");
        let _ = b.build(2);
    }
}
