//! Numeric measure columns and their per-fact pre-aggregation.
//!
//! The offline phase stores, "for each RDF node, … the aggregated value for
//! each (attribute, aggregate function) pair, e.g., the sum of a₁, the count
//! of a₁, the minimum of a₂" (Section 3). This is what lets MVDCube account
//! for facts with multiple measure values while still contributing exactly
//! once per cell: at measure-computation time the cell's bitmap is joined
//! with these per-fact aggregates, not with raw triples.
//!
//! The paper's single-float optimization for provably single-valued numeric
//! properties is captured by [`PreAggregated::is_single_valued`] +
//! [`PreAggregated::float_slots`] (min = max = sum when every count ≤ 1).

use crate::fact_table::FactId;

/// Builder accumulating raw `(fact, value)` pairs of a numeric attribute.
#[derive(Clone, Debug, Default)]
pub struct NumericColumnBuilder {
    name: String,
    pairs: Vec<(u32, f64)>,
}

impl NumericColumnBuilder {
    /// Starts a column named after the attribute.
    pub fn new(name: impl Into<String>) -> Self {
        NumericColumnBuilder { name: name.into(), pairs: Vec::new() }
    }

    /// Records one value of `fact`. Non-finite values are ignored (they come
    /// from unparseable literals and would poison aggregates).
    pub fn add(&mut self, fact: FactId, value: f64) {
        if value.is_finite() {
            self.pairs.push((fact.0, value));
        }
    }

    /// Finalizes into a [`NumericColumn`] over `n_facts` facts.
    pub fn build(mut self, n_facts: usize) -> NumericColumn {
        self.pairs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut offsets = Vec::with_capacity(n_facts + 1);
        let mut values = Vec::with_capacity(self.pairs.len());
        offsets.push(0u32);
        let mut cursor = 0usize;
        for fact in 0..n_facts as u32 {
            while cursor < self.pairs.len() && self.pairs[cursor].0 == fact {
                values.push(self.pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(values.len() as u32);
        }
        assert!(cursor == self.pairs.len(), "fact id out of range in numeric column");
        NumericColumn { name: self.name, offsets, values }
    }
}

/// A finalized multi-valued numeric column (raw values, CSR layout).
#[derive(Clone, Debug)]
pub struct NumericColumn {
    name: String,
    offsets: Vec<u32>,
    values: Vec<f64>,
}

impl NumericColumn {
    /// Convenience constructor from per-fact value lists.
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<f64>]) -> Self {
        let mut b = NumericColumnBuilder::new(name);
        for (i, row) in rows.iter().enumerate() {
            for &v in row {
                b.add(FactId(i as u32), v);
            }
        }
        b.build(rows.len())
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw values of `fact`.
    pub fn values_of(&self, fact: FactId) -> &[f64] {
        let i = fact.index();
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of facts covered.
    pub fn n_facts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Pre-aggregates per fact (the offline step).
    pub fn preaggregate(&self) -> PreAggregated {
        let n = self.n_facts();
        let mut agg = PreAggregated {
            name: self.name.clone(),
            count: vec![0; n],
            sum: vec![0.0; n],
            min: vec![f64::INFINITY; n],
            max: vec![f64::NEG_INFINITY; n],
            single_valued: false,
        };
        for fact in 0..n {
            for &v in self.values_of(FactId(fact as u32)) {
                agg.count[fact] += 1;
                agg.sum[fact] += v;
                agg.min[fact] = agg.min[fact].min(v);
                agg.max[fact] = agg.max[fact].max(v);
            }
        }
        agg.single_valued = agg.count.iter().all(|&c| c <= 1);
        agg
    }
}

/// Per-fact pre-aggregated values of one measure attribute, ordered by fact
/// id (struct-of-arrays).
#[derive(Clone, Debug)]
pub struct PreAggregated {
    name: String,
    count: Vec<u32>,
    sum: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
    /// Cached: every fact has at most one value (the paper's single-float
    /// memory case, and `accumulate`'s two-column fast path).
    single_valued: bool,
}

/// Aggregate totals of one measure over a set of facts — what one cube
/// cell contributes for one measure.
#[derive(Clone, Copy, Debug)]
pub struct MeasureTotals {
    /// Total value count across the facts (0 = measure absent everywhere).
    pub count: u64,
    /// Sum of all values.
    pub sum: f64,
    /// Minimum value (`+∞` when `count == 0`).
    pub min: f64,
    /// Maximum value (`−∞` when `count == 0`).
    pub max: f64,
}

impl Default for MeasureTotals {
    fn default() -> Self {
        MeasureTotals { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl PreAggregated {
    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of facts.
    pub fn n_facts(&self) -> usize {
        self.count.len()
    }

    /// How many values `fact` has for the measure (0 = missing).
    #[inline]
    pub fn count(&self, fact: FactId) -> u32 {
        self.count[fact.index()]
    }

    /// Sum of `fact`'s values (0 when missing).
    #[inline]
    pub fn sum(&self, fact: FactId) -> f64 {
        self.sum[fact.index()]
    }

    /// Minimum of `fact`'s values, if any.
    #[inline]
    pub fn min(&self, fact: FactId) -> Option<f64> {
        (self.count[fact.index()] > 0).then(|| self.min[fact.index()])
    }

    /// Maximum of `fact`'s values, if any.
    #[inline]
    pub fn max(&self, fact: FactId) -> Option<f64> {
        (self.count[fact.index()] > 0).then(|| self.max[fact.index()])
    }

    /// Average of `fact`'s values, if any.
    #[inline]
    pub fn avg(&self, fact: FactId) -> Option<f64> {
        (self.count[fact.index()] > 0)
            .then(|| self.sum[fact.index()] / self.count[fact.index()] as f64)
    }

    /// Support: facts with at least one value.
    pub fn support(&self) -> usize {
        self.count.iter().filter(|&&c| c > 0).count()
    }

    /// Aggregates this measure over a stream of fact ids in one contiguous
    /// pass over the struct-of-arrays columns — the batched bitmap-to-CSR
    /// join MVDCube's measure computation performs per cell. Never panics:
    /// facts without a value simply do not contribute (the min/max slots
    /// stay at their identities when `count` ends up 0).
    #[inline]
    pub fn accumulate<I: IntoIterator<Item = u32>>(&self, facts: I) -> MeasureTotals {
        let mut t = MeasureTotals::default();
        if self.single_valued {
            // min = max = sum for ≤1 value per fact: two columns suffice.
            for fact in facts {
                let i = fact as usize;
                if self.count[i] == 0 {
                    continue;
                }
                let v = self.sum[i];
                t.count += 1;
                t.sum += v;
                t.min = t.min.min(v);
                t.max = t.max.max(v);
            }
            return t;
        }
        for fact in facts {
            let i = fact as usize;
            let c = self.count[i];
            if c == 0 {
                continue;
            }
            t.count += c as u64;
            t.sum += self.sum[i];
            t.min = t.min.min(self.min[i]);
            t.max = t.max.max(self.max[i]);
        }
        t
    }

    /// The global `[min, max]` over all facts, if any value exists — the
    /// offline statistic Appendix C's Popoviciu bound consumes.
    pub fn global_bounds(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.count.len() {
            if self.count[i] > 0 {
                lo = lo.min(self.min[i]);
                hi = hi.max(self.max[i]);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// `true` when every fact has at most one value — the paper's memory
    /// optimization case ("we allocate a single float number for all
    /// pre-aggregated results (min, max, and sum) for such properties").
    pub fn is_single_valued(&self) -> bool {
        self.single_valued
    }

    /// Float slots needed per fact under the paper's memory model: 1 for
    /// single-valued properties, 3 (sum/min/max) otherwise.
    pub fn float_slots(&self) -> usize {
        if self.is_single_valued() {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preaggregate_basic() {
        let col = NumericColumn::from_rows("netWorth", &[vec![2.8e9], vec![1.2e8], vec![]]);
        let agg = col.preaggregate();
        assert_eq!(agg.count(FactId(0)), 1);
        assert_eq!(agg.sum(FactId(0)), 2.8e9);
        assert_eq!(agg.min(FactId(1)), Some(1.2e8));
        assert_eq!(agg.avg(FactId(1)), Some(1.2e8));
        assert_eq!(agg.count(FactId(2)), 0);
        assert_eq!(agg.min(FactId(2)), None);
        assert_eq!(agg.avg(FactId(2)), None);
        assert_eq!(agg.support(), 2);
    }

    #[test]
    fn multi_valued_measure() {
        let col = NumericColumn::from_rows("score", &[vec![1.0, 3.0, 5.0]]);
        let agg = col.preaggregate();
        assert_eq!(agg.count(FactId(0)), 3);
        assert_eq!(agg.sum(FactId(0)), 9.0);
        assert_eq!(agg.min(FactId(0)), Some(1.0));
        assert_eq!(agg.max(FactId(0)), Some(5.0));
        assert_eq!(agg.avg(FactId(0)), Some(3.0));
        assert!(!agg.is_single_valued());
        assert_eq!(agg.float_slots(), 3);
    }

    #[test]
    fn single_valued_optimization_detected() {
        let col = NumericColumn::from_rows("age", &[vec![47.0], vec![66.0], vec![]]);
        let agg = col.preaggregate();
        assert!(agg.is_single_valued());
        assert_eq!(agg.float_slots(), 1);
    }

    #[test]
    fn global_bounds() {
        let col = NumericColumn::from_rows("x", &[vec![5.0, -2.0], vec![9.0]]);
        assert_eq!(col.preaggregate().global_bounds(), Some((-2.0, 9.0)));
        let empty = NumericColumn::from_rows("y", &[vec![], vec![]]);
        assert_eq!(empty.preaggregate().global_bounds(), None);
    }

    #[test]
    fn non_finite_values_dropped() {
        let mut b = NumericColumnBuilder::new("x");
        b.add(FactId(0), f64::NAN);
        b.add(FactId(0), f64::INFINITY);
        b.add(FactId(0), 4.0);
        let col = b.build(1);
        assert_eq!(col.values_of(FactId(0)), &[4.0]);
    }

    #[test]
    fn unsorted_input_lands_on_right_facts() {
        let mut b = NumericColumnBuilder::new("x");
        b.add(FactId(2), 30.0);
        b.add(FactId(0), 10.0);
        b.add(FactId(2), 31.0);
        b.add(FactId(1), 20.0);
        let col = b.build(3);
        assert_eq!(col.values_of(FactId(0)), &[10.0]);
        assert_eq!(col.values_of(FactId(1)), &[20.0]);
        assert_eq!(col.values_of(FactId(2)), &[30.0, 31.0]);
    }
}
