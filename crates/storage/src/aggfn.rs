//! The aggregate function set `Ω = {count, min, max, sum, avg}` (Section 2)
//! and its evaluation over bitmap-selected facts with pre-aggregated
//! measures — MVDCube's `⊗` measure computation (Section 4.3 (b)).

use crate::fact_table::FactId;
use crate::preagg::PreAggregated;
use spade_bitmap::Bitmap;

/// An aggregate function from the paper's `Ω`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// `count` — number of measure values carried by the group's facts.
    /// With the fact itself as implicit measure this is `count(*)` over
    /// *distinct facts* (the corrected Example-3 semantics).
    Count,
    /// `min(M)`.
    Min,
    /// `max(M)`.
    Max,
    /// `sum(M)`.
    Sum,
    /// `avg(M) = sum(M)/count(M)` over per-fact contributions (Variation 2's
    /// correct semantics: each fact contributes once).
    Avg,
}

impl AggFn {
    /// All five functions.
    pub const ALL: [AggFn; 5] = [AggFn::Count, AggFn::Min, AggFn::Max, AggFn::Sum, AggFn::Avg];

    /// Evaluates the function over the facts in `cell` using `measure`'s
    /// per-fact pre-aggregates. Returns `None` when no fact in the cell
    /// carries the measure ("CFs may miss … measures, and thus they do not
    /// contribute to the result", Section 2).
    ///
    /// Per-fact semantics (each fact contributes exactly once):
    /// * `count` — Σ per-fact value counts;
    /// * `sum`   — Σ per-fact sums;
    /// * `min`/`max` — extreme of per-fact extremes;
    /// * `avg`   — Σ sums / Σ counts.
    pub fn combine(self, cell: &Bitmap, measure: &PreAggregated) -> Option<f64> {
        let mut count: u64 = 0;
        let mut sum = 0.0f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for fact in cell.iter() {
            let fact = FactId(fact);
            let c = measure.count(fact);
            if c == 0 {
                continue;
            }
            count += c as u64;
            sum += measure.sum(fact);
            lo = lo.min(measure.min(fact).unwrap());
            hi = hi.max(measure.max(fact).unwrap());
        }
        if count == 0 {
            return None;
        }
        Some(match self {
            AggFn::Count => count as f64,
            AggFn::Sum => sum,
            AggFn::Min => lo,
            AggFn::Max => hi,
            AggFn::Avg => sum / count as f64,
        })
    }

    /// Number of distinct facts in the cell — `count(*)` on the CFS itself
    /// (e.g. "Number of CEOs", Example 3).
    pub fn count_facts(cell: &Bitmap) -> f64 {
        cell.cardinality() as f64
    }

    /// SQL-ish label for display.
    pub fn label(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
        }
    }
}

impl std::fmt::Display for AggFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preagg::NumericColumn;

    /// Dos Santos (fact 0, netWorth 2.8B) and Ghosn (fact 1, netWorth 120M):
    /// Variation 1's correct semantics — each contributes exactly once.
    fn net_worth() -> PreAggregated {
        NumericColumn::from_rows("netWorth", &[vec![2.8e9], vec![1.2e8], vec![]]).preaggregate()
    }

    #[test]
    fn variation1_sum_counts_each_fact_once() {
        let cell = Bitmap::from_iter([0u32, 1]);
        let sum = AggFn::Sum.combine(&cell, &net_worth()).unwrap();
        assert_eq!(sum, 2.8e9 + 1.2e8);
    }

    #[test]
    fn variation2_avg_divides_by_fact_contributions() {
        // avg age of Dos Santos (47) and Ghosn (66) = 56.5, not sum/5.
        let age = NumericColumn::from_rows("age", &[vec![47.0], vec![66.0]]).preaggregate();
        let cell = Bitmap::from_iter([0u32, 1]);
        assert_eq!(AggFn::Avg.combine(&cell, &age), Some(56.5));
    }

    #[test]
    fn missing_measures_do_not_contribute() {
        let cell = Bitmap::from_iter([2u32]);
        for f in AggFn::ALL {
            assert_eq!(f.combine(&cell, &net_worth()), None, "{f}");
        }
        // A mixed cell ignores the missing fact but keeps the others.
        let mixed = Bitmap::from_iter([1u32, 2]);
        assert_eq!(AggFn::Sum.combine(&mixed, &net_worth()), Some(1.2e8));
        assert_eq!(AggFn::Count.combine(&mixed, &net_worth()), Some(1.0));
    }

    #[test]
    fn multi_valued_measure_counts_values() {
        let m = NumericColumn::from_rows("score", &[vec![1.0, 2.0], vec![10.0]]).preaggregate();
        let cell = Bitmap::from_iter([0u32, 1]);
        assert_eq!(AggFn::Count.combine(&cell, &m), Some(3.0));
        assert_eq!(AggFn::Sum.combine(&cell, &m), Some(13.0));
        assert_eq!(AggFn::Min.combine(&cell, &m), Some(1.0));
        assert_eq!(AggFn::Max.combine(&cell, &m), Some(10.0));
        assert!((AggFn::Avg.combine(&cell, &m).unwrap() - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn count_facts_is_bitmap_cardinality() {
        let cell = Bitmap::from_iter([4u32, 9, 9, 100]);
        assert_eq!(AggFn::count_facts(&cell), 3.0);
    }
}
