//! Column storage for candidate fact sets, attributes, and pre-aggregated
//! measures — the paper's database layout (Section 4.3):
//!
//! > "our RDF database uses the following storage: a CFS is represented by a
//! > single-column table storing the identifiers (IDs) of the facts; for each
//! > attribute *a*, a table *t_a* stores (s, o) pairs for each (s, a, o)
//! > triple in the RDF graph."
//!
//! and (Section 3, offline phase):
//!
//! > "for each multi-valued attribute, we create a table in the database
//! > storing its values, pre-aggregated on the RDF nodes that have it. …
//! > for each RDF node, we compute and store the aggregated value for each
//! > (attribute, aggregate function) pair."
//!
//! Facts are densified to `0..|CFS|` ([`FactId`]) so that bitmaps over facts
//! and the pre-aggregated measure columns share one ordering — the property
//! MVDCube's measure computation relies on ("both the bitmaps and the
//! pre-aggregated measures are ordered by the fact ID").
//!
//! * [`FactTable`] — the CFS single-column table (graph node ↔ dense fact id);
//! * [`CategoricalColumn`] — a multi-valued dimension attribute in CSR form
//!   with a per-attribute value dictionary;
//! * [`NumericColumn`] / [`PreAggregated`] — a multi-valued numeric measure
//!   attribute and its per-fact pre-aggregation;
//! * [`AggFn`] — the aggregate function set `Ω = {count, min, max, sum, avg}`.

mod aggfn;
mod column;
mod fact_table;
mod preagg;

pub use aggfn::AggFn;
pub use column::{CategoricalColumn, CategoricalColumnBuilder};
pub use fact_table::{FactId, FactTable};
pub use preagg::{MeasureTotals, NumericColumn, NumericColumnBuilder, PreAggregated};
