//! Hierarchical per-request tracing spans.
//!
//! A [`Trace`] collects [`Span`] records for one request. Code under
//! measurement receives a [`SpanCtx`] (threaded alongside the request
//! budget) and opens child spans:
//!
//! ```
//! use spade_telemetry::span::Trace;
//!
//! let trace = Trace::new();
//! let ctx = trace.root();
//! {
//!     let stage = ctx.span("cfs_selection");
//!     stage.attr("candidates", 4);
//!     // ... work ...
//! } // recorded on drop
//! ```
//!
//! **Determinism.** Serially created spans get an automatic per-parent
//! order key. Parallel fan-outs (one span per shard / lattice / CFS) must
//! use [`SpanCtx::span_at`] with the item's input index so sibling order is
//! scheduler-independent; the resulting tree **shape** ([`Trace::shape`]:
//! names + nesting + sibling order) is then identical at any thread count,
//! with only timings and volatile attrs (`thread`) differing.
//!
//! A disabled context ([`SpanCtx::disabled`]) turns every operation into a
//! branch-and-return; [`Span::finish`] still returns the measured elapsed
//! time so callers can keep using spans as their single timing source.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone)]
enum AttrValue {
    U64(u64),
    Str(String),
}

#[derive(Clone)]
struct Rec {
    name: &'static str,
    /// 0 = root; otherwise the 1-based id of the parent span.
    parent: u32,
    /// Sibling order key; unique per parent by construction.
    order: u64,
    start_us: u64,
    dur_us: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

struct State {
    records: Vec<Rec>,
    /// Next automatic order key per parent id.
    next_order: HashMap<u32, u64>,
}

struct Inner {
    start: Instant,
    state: Mutex<State>,
}

/// A per-request span collector.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Inner>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    pub fn new() -> Self {
        Trace {
            inner: Arc::new(Inner {
                start: Instant::now(),
                state: Mutex::new(State { records: Vec::new(), next_order: HashMap::new() }),
            }),
        }
    }

    /// The root context; spans opened on it become top-level spans.
    pub fn root(&self) -> SpanCtx {
        SpanCtx { inner: Some(self.inner.clone()), parent: 0 }
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner.state.lock().unwrap().records.len()
    }

    /// Top-level spans as `(name, duration)` in sibling order — the
    /// stage-level view used to feed per-stage histograms and step timings.
    pub fn stage_durations(&self) -> Vec<(&'static str, Duration)> {
        let state = self.inner.state.lock().unwrap();
        let mut top: Vec<&Rec> = state.records.iter().filter(|r| r.parent == 0).collect();
        top.sort_by_key(|r| (r.order, r.name));
        top.iter().map(|r| (r.name, Duration::from_micros(r.dur_us))).collect()
    }

    /// The tree shape: names + nesting + sibling order, no timings or
    /// attrs. Identical across thread counts for well-formed span usage.
    pub fn shape(&self) -> String {
        let state = self.inner.state.lock().unwrap();
        let children = child_index(&state.records);
        let mut out = String::new();
        for &i in children.get(&0).map(Vec::as_slice).unwrap_or(&[]) {
            shape_rec(&state.records, &children, i, &mut out);
        }
        out
    }

    /// The span tree as a JSON array (deterministic key order; `dur_us`
    /// and the volatile `thread` attr vary run to run).
    pub fn spans_json(&self) -> String {
        let state = self.inner.state.lock().unwrap();
        let children = child_index(&state.records);
        let mut out = String::from("[");
        let mut first = true;
        for &i in children.get(&0).map(Vec::as_slice).unwrap_or(&[]) {
            if !first {
                out.push(',');
            }
            first = false;
            json_rec(&state.records, &children, i, &mut out);
        }
        out.push(']');
        out
    }

    /// Microseconds elapsed since the trace was created.
    pub fn elapsed_us(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    /// Sums the numeric attribute `key` over every span named exactly
    /// `span_name`. Used to aggregate per-shard work counters (cells, facts)
    /// into request totals; filtering by span name matters because other
    /// spans (`emit`, `translate`) reuse attr keys with different meanings.
    pub fn sum_attr(&self, span_name: &str, key: &str) -> u64 {
        let state = self.inner.state.lock().unwrap();
        let mut total = 0u64;
        for rec in state.records.iter().filter(|r| r.name == span_name) {
            for (k, v) in &rec.attrs {
                if *k == key {
                    if let AttrValue::U64(n) = v {
                        total += *n;
                    }
                }
            }
        }
        total
    }
}

/// Maps parent id -> child record indexes in sibling order.
fn child_index(records: &[Rec]) -> HashMap<u32, Vec<usize>> {
    let mut children: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        children.entry(r.parent).or_default().push(i);
    }
    for list in children.values_mut() {
        list.sort_by_key(|&i| (records[i].order, records[i].name));
    }
    children
}

fn shape_rec(records: &[Rec], children: &HashMap<u32, Vec<usize>>, i: usize, out: &mut String) {
    out.push_str(records[i].name);
    let id = (i + 1) as u32;
    if let Some(kids) = children.get(&id) {
        out.push('(');
        for &k in kids {
            shape_rec(records, children, k, out);
        }
        out.push(')');
    }
    out.push(';');
}

fn json_rec(records: &[Rec], children: &HashMap<u32, Vec<usize>>, i: usize, out: &mut String) {
    use std::fmt::Write;
    let r = &records[i];
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
        r.name, r.start_us, r.dur_us
    );
    if !r.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (j, (k, v)) in r.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(out, "\"{k}\":{n}");
                }
                AttrValue::Str(s) => {
                    let _ = write!(out, "\"{k}\":\"{}\"", escape(s));
                }
            }
        }
        out.push('}');
    }
    let id = (i + 1) as u32;
    if let Some(kids) = children.get(&id) {
        out.push_str(",\"children\":[");
        for (j, &k) in kids.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_rec(records, children, k, out);
        }
        out.push(']');
    }
    out.push('}');
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A handle to one position in the span tree; opening spans on it creates
/// children of that position. Cheap to clone; `disabled()` contexts never
/// allocate or lock.
#[derive(Clone)]
pub struct SpanCtx {
    inner: Option<Arc<Inner>>,
    parent: u32,
}

impl SpanCtx {
    /// A context on which every operation is a no-op (spans still measure
    /// wall time for [`Span::finish`]).
    pub fn disabled() -> Self {
        SpanCtx { inner: None, parent: 0 }
    }

    /// Whether spans opened here are recorded anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some() && cfg!(not(feature = "noop"))
    }

    /// Opens a child span with an automatic per-parent order key. Use only
    /// where one thread at a time creates children of this parent; for
    /// parallel fan-outs use [`SpanCtx::span_at`].
    pub fn span(&self, name: &'static str) -> Span {
        self.open(name, None)
    }

    /// Opens a child span with an explicit sibling order key (the item's
    /// input index), making sibling order scheduler-independent.
    pub fn span_at(&self, name: &'static str, index: u64) -> Span {
        self.open(name, Some(index))
    }

    fn open(&self, name: &'static str, index: Option<u64>) -> Span {
        let start = Instant::now();
        if cfg!(feature = "noop") {
            return Span { inner: None, id: 0, start, done: false };
        }
        let Some(inner) = &self.inner else {
            return Span { inner: None, id: 0, start, done: false };
        };
        let start_us = start.duration_since(inner.start).as_micros() as u64;
        let mut state = inner.state.lock().unwrap();
        let slot = state.next_order.entry(self.parent).or_insert(0);
        let order = match index {
            Some(i) => {
                *slot = (*slot).max(i + 1);
                i
            }
            None => {
                let o = *slot;
                *slot += 1;
                o
            }
        };
        state.records.push(Rec {
            name,
            parent: self.parent,
            order,
            start_us,
            dur_us: 0,
            attrs: Vec::new(),
        });
        let id = state.records.len() as u32;
        drop(state);
        Span { inner: Some(inner.clone()), id, start, done: false }
    }
}

/// An open span; records its duration when dropped or [`finish`]ed.
///
/// [`finish`]: Span::finish
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: u32,
    start: Instant,
    done: bool,
}

impl Span {
    /// A context whose spans become children of this span.
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx { inner: self.inner.clone(), parent: self.id }
    }

    /// Whether this span is recorded anywhere (false for spans opened on a
    /// disabled context). Lets callers skip computing expensive attrs.
    pub fn recorded(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a numeric attribute.
    pub fn attr(&self, key: &'static str, value: u64) {
        self.push_attr(key, AttrValue::U64(value));
    }

    /// Attaches a string attribute.
    pub fn attr_str(&self, key: &'static str, value: &str) {
        if self.inner.is_some() {
            self.push_attr(key, AttrValue::Str(value.to_owned()));
        }
    }

    /// Attaches the executing thread's id as a volatile `thread` attr
    /// (excluded from [`Trace::shape`], varies run to run).
    pub fn record_thread(&self) {
        if self.inner.is_some() {
            let id = format!("{:?}", std::thread::current().id());
            self.push_attr("thread", AttrValue::Str(id));
        }
    }

    fn push_attr(&self, key: &'static str, value: AttrValue) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            let rec = &mut state.records[self.id as usize - 1];
            rec.attrs.push((key, value));
        }
    }

    /// Closes the span and returns its measured duration. Works (and
    /// measures) even on disabled spans, so callers can use the span as
    /// their only timer.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.close(elapsed);
        self.done = true;
        elapsed
    }

    fn close(&self, elapsed: Duration) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().unwrap();
            let rec = &mut state.records[self.id as usize - 1];
            rec.dur_us = elapsed.as_micros() as u64;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.close(self.start.elapsed());
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn serial_spans_keep_creation_order() {
        let trace = Trace::new();
        let ctx = trace.root();
        ctx.span("a").finish();
        ctx.span("b").finish();
        ctx.span("c").finish();
        assert_eq!(trace.shape(), "a;b;c;");
    }

    #[test]
    fn span_at_orders_by_index_not_creation() {
        let trace = Trace::new();
        let ctx = trace.root();
        let parent = ctx.span("stage");
        let pctx = parent.ctx();
        // Simulate scheduler-dependent completion order.
        pctx.span_at("shard", 2).finish();
        pctx.span_at("shard", 0).finish();
        pctx.span_at("shard", 1).finish();
        // A serial span created after the fan-out sorts after all of it.
        pctx.span("merge").finish();
        parent.finish();
        assert_eq!(trace.shape(), "stage(shard;shard;shard;merge;);");
    }

    #[test]
    fn shape_is_identical_regardless_of_interleaving() {
        let build = |order: &[u64]| {
            let trace = Trace::new();
            let ctx = trace.root();
            for &i in order {
                let s = ctx.span_at("lattice", i);
                s.ctx().span("translate").finish();
                s.ctx().span("cube").finish();
                s.finish();
            }
            trace.shape()
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 0, 1]));
    }

    #[test]
    fn disabled_ctx_records_nothing_but_finish_measures() {
        let ctx = SpanCtx::disabled();
        assert!(!ctx.enabled());
        let span = ctx.span("x");
        span.attr("k", 1);
        let d = span.finish();
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn sum_attr_filters_by_span_name() {
        let trace = Trace::new();
        let ctx = trace.root();
        for (i, cells) in [(0u64, 10u64), (1, 20), (2, 12)] {
            let s = ctx.span_at("shard", i);
            s.attr("cells", cells);
            s.attr("facts", cells * 2);
            s.finish();
        }
        // An `emit` span reusing the `cells` key must not leak into the sum.
        let e = ctx.span("emit");
        e.attr("cells", 999);
        e.finish();
        assert_eq!(trace.sum_attr("shard", "cells"), 42);
        assert_eq!(trace.sum_attr("shard", "facts"), 84);
        assert_eq!(trace.sum_attr("shard", "missing"), 0);
        assert_eq!(trace.sum_attr("nope", "cells"), 0);
    }

    #[test]
    fn stage_durations_and_json_expose_top_level_spans() {
        let trace = Trace::new();
        let ctx = trace.root();
        let a = ctx.span("cfs_selection");
        a.attr("candidates", 4);
        a.finish();
        ctx.span("evaluation").finish();
        let stages: Vec<&str> = trace.stage_durations().iter().map(|(n, _)| *n).collect();
        assert_eq!(stages, ["cfs_selection", "evaluation"]);
        let json = trace.spans_json();
        assert!(json.starts_with("[{\"name\":\"cfs_selection\""), "{json}");
        assert!(json.contains("\"attrs\":{\"candidates\":4}"), "{json}");
    }
}
