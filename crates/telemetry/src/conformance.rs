//! Prometheus text-format conformance checking: parse an exposition back
//! and validate its structure. Backs the registry unit tests, the serve
//! loopback tests (against a live `/metrics` scrape), and the `promcheck`
//! CI binary.
//!
//! Checks enforced:
//! - every sample belongs to a family with `# HELP` and `# TYPE` lines
//!   appearing before it, each exactly once;
//! - `# TYPE` is one of `counter`, `gauge`, `histogram`;
//! - all sample values parse as finite floats (counters non-negative,
//!   bucket/count values as integers);
//! - for every histogram series: `le` bounds strictly increasing, bucket
//!   counts monotone non-decreasing, a `+Inf` bucket present and equal to
//!   the series' `_count`, and a finite `_sum` present.
//!
//! [`check_detailed`] additionally returns per-family series label
//! signatures in exposition order, so callers (`promcheck --require`) can
//! assert required families exist and their series are label-sorted.

use std::collections::HashMap;

/// What a valid exposition contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Number of metric families.
    pub families: usize,
    /// Number of families with `# TYPE ... histogram`.
    pub histograms: usize,
    /// Number of series (scalar samples + histogram series).
    pub series: usize,
}

/// Per-family series detail from a valid exposition, for assertions beyond
/// the [`ExpositionSummary`] counts (presence of required families,
/// label-signature ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyDetail {
    pub name: String,
    /// Series label signatures (`key=value` pairs joined with `,`; empty
    /// string for an unlabeled series; histogram signatures exclude `le`)
    /// in exposition order.
    pub series: Vec<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative_count)` in file order.
    buckets: Vec<(f64, u64)>,
    inf: Option<u64>,
    sum: Option<f64>,
    count: Option<u64>,
}

struct FamilyState {
    kind: Option<Kind>,
    has_help: bool,
    /// Scalar series label signatures in exposition order.
    scalar_labels: Vec<String>,
    hist: HashMap<String, HistSeries>,
    /// Histogram series keys in first-appearance order.
    hist_order: Vec<String>,
}

/// Validates a Prometheus text exposition; returns a summary or the first
/// violation found (with its line number).
pub fn check(text: &str) -> Result<ExpositionSummary, String> {
    check_detailed(text).map(|(summary, _)| summary)
}

/// Like [`check`], additionally returning per-family series detail in
/// exposition order.
pub fn check_detailed(text: &str) -> Result<(ExpositionSummary, Vec<FamilyDetail>), String> {
    let mut families: HashMap<String, FamilyState> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: HELP without text"))?;
            if help.trim().is_empty() {
                return Err(format!("line {lineno}: empty HELP for {name}"));
            }
            let fam = family_entry(&mut families, &mut order, name);
            if fam.has_help {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            fam.has_help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE without kind"))?;
            let kind = match kind.trim() {
                "counter" => Kind::Counter,
                "gauge" => Kind::Gauge,
                "histogram" => Kind::Histogram,
                other => return Err(format!("line {lineno}: unknown TYPE {other:?}")),
            };
            let fam = family_entry(&mut families, &mut order, name);
            if fam.kind.is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            fam.kind = Some(kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }

        let (name, labels, value) =
            parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let value_f: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse().map_err(|_| format!("line {lineno}: bad sample value {value:?}"))?
        };
        if !value_f.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value {value:?}"));
        }

        // Resolve histogram component samples to their base family.
        let (family_name, component) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                let is_hist =
                    families.get(base).is_some_and(|f| f.kind == Some(Kind::Histogram));
                is_hist.then(|| (base.to_owned(), Some(*suffix)))
            })
            .unwrap_or((name.clone(), None));

        let fam = families
            .get_mut(&family_name)
            .ok_or_else(|| format!("line {lineno}: sample {name} before its # TYPE"))?;
        let Some(kind) = fam.kind else {
            return Err(format!("line {lineno}: sample {name} before its # TYPE"));
        };
        if !fam.has_help {
            return Err(format!("line {lineno}: sample {name} before its # HELP"));
        }

        match (kind, component) {
            (Kind::Histogram, Some(component)) => {
                let mut key_labels: Vec<(String, String)> = Vec::new();
                let mut le: Option<String> = None;
                for (k, v) in labels {
                    if k == "le" {
                        le = Some(v);
                    } else {
                        key_labels.push((k, v));
                    }
                }
                let key = key_labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                if !fam.hist.contains_key(&key) {
                    fam.hist_order.push(key.clone());
                }
                let series = fam.hist.entry(key).or_default();
                match component {
                    "_bucket" => {
                        let le = le.ok_or_else(|| {
                            format!("line {lineno}: bucket sample without le label")
                        })?;
                        let count = value
                            .parse::<u64>()
                            .map_err(|_| format!("line {lineno}: non-integer bucket count"))?;
                        if le == "+Inf" {
                            if series.inf.is_some() {
                                return Err(format!("line {lineno}: duplicate +Inf bucket"));
                            }
                            series.inf = Some(count);
                        } else {
                            let bound: f64 = le
                                .parse()
                                .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?;
                            series.buckets.push((bound, count));
                        }
                    }
                    "_sum" => series.sum = Some(value_f),
                    "_count" => {
                        series.count = Some(value.parse::<u64>().map_err(|_| {
                            format!("line {lineno}: non-integer histogram count")
                        })?)
                    }
                    _ => unreachable!(),
                }
            }
            (Kind::Histogram, None) => {
                return Err(format!("line {lineno}: bare sample {name} for histogram family"));
            }
            (Kind::Counter, _) => {
                if value_f < 0.0 {
                    return Err(format!("line {lineno}: negative counter {name}"));
                }
                fam.scalar_labels.push(label_signature(&labels));
            }
            (Kind::Gauge, _) => fam.scalar_labels.push(label_signature(&labels)),
        }
    }

    let mut histograms = 0usize;
    let mut series = 0usize;
    let mut details: Vec<FamilyDetail> = Vec::with_capacity(order.len());
    for name in &order {
        let fam = &families[name];
        let Some(kind) = fam.kind else {
            return Err(format!("family {name}: HELP without TYPE"));
        };
        if !fam.has_help {
            return Err(format!("family {name}: TYPE without HELP"));
        }
        if kind == Kind::Histogram {
            histograms += 1;
            if fam.hist.is_empty() {
                return Err(format!("histogram {name}: no series"));
            }
            for (key, s) in &fam.hist {
                let label = if key.is_empty() { String::new() } else { format!("{{{key}}}") };
                for w in s.buckets.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return Err(format!(
                            "histogram {name}{label}: le bounds not increasing"
                        ));
                    }
                    if w[1].1 < w[0].1 {
                        return Err(format!(
                            "histogram {name}{label}: bucket counts not monotone"
                        ));
                    }
                }
                let inf = s
                    .inf
                    .ok_or_else(|| format!("histogram {name}{label}: missing +Inf bucket"))?;
                if let Some(&(_, last)) = s.buckets.last() {
                    if inf < last {
                        return Err(format!("histogram {name}{label}: +Inf below last bucket"));
                    }
                }
                let count = s
                    .count
                    .ok_or_else(|| format!("histogram {name}{label}: missing _count"))?;
                if inf != count {
                    return Err(format!(
                        "histogram {name}{label}: +Inf bucket {inf} != _count {count}"
                    ));
                }
                if s.sum.is_none() {
                    return Err(format!("histogram {name}{label}: missing _sum"));
                }
            }
            series += fam.hist.len();
            details.push(FamilyDetail { name: name.clone(), series: fam.hist_order.clone() });
        } else {
            if fam.scalar_labels.is_empty() {
                return Err(format!("family {name}: declared but no samples"));
            }
            series += fam.scalar_labels.len();
            details
                .push(FamilyDetail { name: name.clone(), series: fam.scalar_labels.clone() });
        }
    }
    Ok((ExpositionSummary { families: order.len(), histograms, series }, details))
}

fn label_signature(labels: &[(String, String)]) -> String {
    labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",")
}

fn family_entry<'a>(
    families: &'a mut HashMap<String, FamilyState>,
    order: &mut Vec<String>,
    name: &str,
) -> &'a mut FamilyState {
    if !families.contains_key(name) {
        families.insert(
            name.to_owned(),
            FamilyState {
                kind: None,
                has_help: false,
                scalar_labels: Vec::new(),
                hist: HashMap::new(),
                hist_order: Vec::new(),
            },
        );
        order.push(name.to_owned());
    }
    families.get_mut(name).unwrap()
}

type Sample = (String, Vec<(String, String)>, String);

/// Splits `name[{labels}] value` into parts. Label values must be plain
/// quoted strings without escapes (all this renderer emits).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = match line.find('{') {
        Some(_) => {
            let close =
                line.rfind('}').ok_or_else(|| format!("unclosed label braces in {line:?}"))?;
            (line[..close + 1].to_owned(), line[close + 1..].trim())
        }
        None => {
            let mut it = line.split_whitespace();
            let name = it.next().ok_or("empty sample line")?;
            let value = it.next().ok_or_else(|| format!("sample {name} without value"))?;
            (name.to_owned(), value)
        }
    };
    brace_check(&name_labels)?;
    let (name, labels) = match name_labels.find('{') {
        Some(brace) => {
            let inner = &name_labels[brace + 1..name_labels.len() - 1];
            (name_labels[..brace].to_owned(), parse_labels(inner)?)
        }
        None => (name_labels, Vec::new()),
    };
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    if value.is_empty() {
        return Err(format!("sample {name} without value"));
    }
    Ok((name, labels, value.to_owned()))
}

fn brace_check(s: &str) -> Result<(), String> {
    let opens = s.matches('{').count();
    let closes = s.matches('}').count();
    if opens != closes || opens > 1 {
        return Err(format!("malformed label braces in {s:?}"));
    }
    Ok(())
}

fn parse_labels(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=' in {inner:?}"))?;
        let key = rest[..eq].to_owned();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in {inner:?}"));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated label value in {inner:?}"))?;
        let value = after[1..1 + close].to_owned();
        labels.push((key, value));
        rest = &after[close + 2..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in {inner:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Registry, DURATION_BOUNDS_SECONDS};

    #[test]
    fn registry_output_passes() {
        let r = Registry::new();
        r.counter("reqs_total", "requests").add(3);
        r.gauge("inflight", "in flight").set(1);
        let h = r.histogram_with(
            "latency_seconds",
            "latency",
            &[("route", "explore")],
            &DURATION_BOUNDS_SECONDS,
        );
        h.observe(0.003);
        h.observe(0.2);
        let summary = check(&r.render()).expect("conformant");
        assert_eq!(summary, ExpositionSummary { families: 3, histograms: 1, series: 3 });
    }

    #[test]
    fn detailed_exposes_series_signatures_in_order() {
        let r = Registry::new();
        r.gauge_with("cost", "cost", &[("graph", "a"), ("quantile", "0.5")]).set(1);
        r.gauge_with("cost", "cost", &[("graph", "a"), ("quantile", "0.95")]).set(2);
        r.gauge_with("cost", "cost", &[("graph", "b"), ("quantile", "0.5")]).set(3);
        r.counter("reqs_total", "requests").inc();
        let (summary, details) = check_detailed(&r.render()).expect("conformant");
        assert_eq!(summary.series, 4);
        let cost = details.iter().find(|d| d.name == "cost").expect("cost family");
        assert_eq!(
            cost.series,
            ["graph=a,quantile=0.5", "graph=a,quantile=0.95", "graph=b,quantile=0.5"]
        );
        assert!(cost.series.windows(2).all(|w| w[0] <= w[1]), "label-sorted");
        let reqs = details.iter().find(|d| d.name == "reqs_total").expect("reqs family");
        assert_eq!(reqs.series, [String::new()]);
    }

    #[test]
    fn sample_before_type_is_rejected() {
        let text = "reqs_total 3\n# HELP reqs_total r\n# TYPE reqs_total counter\n";
        assert!(check(text).unwrap_err().contains("before its # TYPE"));
    }

    #[test]
    fn missing_help_is_rejected() {
        let text = "# TYPE reqs_total counter\nreqs_total 3\n";
        assert!(check(text).unwrap_err().contains("before its # HELP"));
    }

    #[test]
    fn non_monotone_buckets_are_rejected() {
        let text = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"1\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1.0
h_count 5
";
        assert!(check(text).unwrap_err().contains("not monotone"));
    }

    #[test]
    fn inf_must_equal_count() {
        let text = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"1\"} 3
h_bucket{le=\"+Inf\"} 4
h_sum 1.0
h_count 5
";
        assert!(check(text).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn missing_inf_bucket_is_rejected() {
        let text = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"1\"} 3
h_sum 1.0
h_count 3
";
        assert!(check(text).unwrap_err().contains("missing +Inf"));
    }

    #[test]
    fn negative_counter_is_rejected() {
        let text = "# HELP c x\n# TYPE c counter\nc -1\n";
        assert!(check(text).unwrap_err().contains("negative counter"));
    }
}
