//! Dependency-free observability substrate for the spade stack.
//!
//! Three layers, all std-only and cheap enough to stay on in production:
//!
//! - [`metrics`] — a registry of named counters, gauges, and fixed-boundary
//!   histograms. Record paths are lock-free (relaxed atomics; the histogram
//!   sum is a CAS loop over `f64` bits); rendering produces deterministic
//!   Prometheus text exposition. Unlabeled single-series metrics render as
//!   bare `name value` lines, labeled series group under one
//!   `# HELP`/`# TYPE` family in registration order.
//! - [`span`] — hierarchical per-request traces. A [`span::SpanCtx`] is
//!   threaded alongside a request budget through pipeline stages; parallel
//!   fan-outs create children with explicit order keys
//!   ([`span::SpanCtx::span_at`]) so serial and parallel runs produce the
//!   same span **tree shape** (names + nesting + sibling order) modulo
//!   timing. A disabled context ([`span::SpanCtx::disabled`]) makes every
//!   operation a branch-and-return.
//! - [`slowlog`] — a bounded in-memory log keeping the N slowest request
//!   traces over a threshold, for `GET /debug/slow`-style surfacing.
//! - [`ledger`] — a request analytics ledger: one compact record per
//!   completed request in a lock-light bounded ring, plus streaming
//!   per-graph cost profiles (EWMA + P² quantile sketches, no sample
//!   retention) and an estimate-vs-actual q-error scorecard, for
//!   `GET /debug/queries`-style surfacing and adaptive admission.
//!
//! [`conformance`] parses Prometheus text back and validates it (HELP/TYPE
//! present, histogram buckets monotone, `+Inf` bucket equals `_count`); it
//! backs the unit tests, the serve loopback tests, and the `promcheck`
//! binary CI pipes a live `/metrics` scrape through.
//!
//! With the `noop` cargo feature every record path compiles to an inlined
//! no-op while the API (and render output structure) stays intact — the
//! baseline build for overhead benchmarks.

pub mod conformance;
pub mod ledger;
pub mod metrics;
pub mod slowlog;
pub mod span;

pub use conformance::{check, ExpositionSummary};
pub use ledger::{
    CacheOutcome, Ledger, LedgerRecord, ProfileSnapshot, ResponseClass, ScorecardSnapshot,
};
pub use metrics::{
    Counter, Gauge, Histogram, Registry, DURATION_BOUNDS_SECONDS, FINE_DURATION_BOUNDS_SECONDS,
};
pub use slowlog::{SlowEntry, SlowLog};
pub use span::{Span, SpanCtx, Trace};
