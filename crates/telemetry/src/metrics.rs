//! Metrics registry: counters, gauges, fixed-boundary histograms, and a
//! deterministic Prometheus text renderer.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! the registry keeps a second reference for rendering. Record paths touch
//! only relaxed atomics. Families render in registration order, series
//! within a family in registration order, so two scrapes of the same
//! registry state are byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Standard latency bucket boundaries in seconds: 500µs .. 10s.
pub const DURATION_BOUNDS_SECONDS: [f64; 14] =
    [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

/// Fine-grained latency bucket boundaries in seconds: 10µs .. 1s. For
/// sub-millisecond phenomena (queue wait on a warm path, cancel latency)
/// where [`DURATION_BOUNDS_SECONDS`]'s 500µs first bucket swallows the
/// whole distribution.
pub const FINE_DURATION_BOUNDS_SECONDS: [f64; 14] = [
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1,
    0.5, 1.0,
];

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all updates are kept but
    /// never rendered). Useful for disabled-telemetry configurations.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        #[cfg(feature = "noop")]
        {
            let _ = v;
        }
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Overwrites the value. Only for mirroring an *externally maintained*
    /// monotone count (e.g. cache statistics owned by another subsystem)
    /// into the exposition at scrape time.
    #[inline]
    pub fn mirror(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Subtracts `v` (wrapping, like the underlying atomic; callers keep
    /// inc/dec balanced).
    #[inline]
    pub fn sub(&self, v: u64) {
        self.0.fetch_sub(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Sorted finite upper bounds; bucket `i` counts observations with
    /// `v <= bounds[i]` (non-cumulative storage, rendered cumulative).
    bounds: Box<[f64]>,
    /// `bounds.len() + 1` slots; the last is the `+Inf` overflow bucket.
    buckets: Box<[AtomicU64]>,
    /// Sum of observations as `f64` bits, updated via CAS.
    sum_bits: AtomicU64,
}

/// A fixed-boundary histogram with a lock-free record path.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.into(),
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// A histogram not attached to any registry.
    pub fn detached(bounds: &[f64]) -> Self {
        Self::with_bounds(bounds)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        #[cfg(feature = "noop")]
        {
            let _ = v;
        }
        #[cfg(not(feature = "noop"))]
        {
            let idx = self.0.bounds.partition_point(|b| *b < v);
            self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
            let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.0.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Records a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum SeriesValue {
    Scalar(Arc<AtomicU64>),
    Histogram(Arc<HistogramInner>),
}

struct Series {
    labels: Vec<(&'static str, String)>,
    value: SeriesValue,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    series: Vec<Series>,
}

/// A registry of metric families rendered as Prometheus text exposition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&'static str, &str)],
        value: SeriesValue,
    ) {
        let labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect();
        let mut families = self.families.lock().unwrap();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(family.kind == kind, "metric {name} registered with two kinds");
            assert!(
                family.series.iter().all(|s| s.labels != labels),
                "metric {name} registered twice with the same labels"
            );
            family.series.push(Series { labels, value });
        } else {
            families.push(Family { name, help, kind, series: vec![Series { labels, value }] });
        }
    }

    /// Registers an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter series under `name` with the given labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        let c = Counter::detached();
        self.register(name, help, Kind::Counter, labels, SeriesValue::Scalar(c.0.clone()));
        c
    }

    /// Registers an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge series under `name` with the given labels.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        let g = Gauge::detached();
        self.register(name, help, Kind::Gauge, labels, SeriesValue::Scalar(g.0.clone()));
        g
    }

    /// Registers an unlabeled histogram with the given finite upper bounds.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[f64],
    ) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers a histogram series under `name` with the given labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let h = Histogram::with_bounds(bounds);
        self.register(name, help, Kind::Histogram, labels, SeriesValue::Histogram(h.0.clone()));
        h
    }

    /// Renders the Prometheus text exposition. Deterministic: families in
    /// registration order, series in registration order within a family.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(family.name);
            out.push(' ');
            out.push_str(family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                match &series.value {
                    SeriesValue::Scalar(v) => {
                        out.push_str(family.name);
                        push_labels(&mut out, &series.labels, None);
                        let _ = writeln_u64(&mut out, v.load(Ordering::Relaxed));
                    }
                    SeriesValue::Histogram(h) => {
                        render_histogram(&mut out, family.name, series, h)
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, series: &Series, h: &HistogramInner) {
    let mut cumulative = 0u64;
    for (i, bucket) in h.buckets.iter().enumerate() {
        cumulative += bucket.load(Ordering::Relaxed);
        let le = if i < h.bounds.len() { fmt_f64(h.bounds[i]) } else { "+Inf".to_owned() };
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, &series.labels, Some(&le));
        let _ = writeln_u64(out, cumulative);
    }
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, &series.labels, None);
    out.push_str(&fmt_f64(f64::from_bits(h.sum_bits.load(Ordering::Relaxed))));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, &series.labels, None);
    let _ = writeln_u64(out, cumulative);
}

fn push_labels(out: &mut String, labels: &[(&'static str, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        out.push(' ');
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push_str("} ");
}

fn writeln_u64(out: &mut String, v: u64) -> std::fmt::Result {
    use std::fmt::Write;
    writeln!(out, "{v}")
}

/// Deterministic float formatting: Rust's shortest-roundtrip `Display`
/// (`0.0005`, `1`, `2.5`), which Prometheus parsers accept.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "noop"))]
    #[test]
    fn unlabeled_counter_renders_bare_name_value_line() {
        let r = Registry::new();
        let c = r.counter("spade_serve_explore_total", "explore requests");
        c.add(16);
        let text = r.render();
        assert!(text.contains("spade_serve_explore_total 16\n"), "{text}");
        assert!(text.contains("# TYPE spade_serve_explore_total counter\n"));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn labeled_series_share_one_family_block() {
        let r = Registry::new();
        let a = r.counter_with("reqs", "h", &[("route", "a")]);
        let b = r.counter_with("reqs", "h", &[("route", "b")]);
        a.inc();
        b.add(2);
        let text = r.render();
        assert_eq!(text.matches("# TYPE reqs counter").count(), 1);
        assert!(text.contains("reqs{route=\"a\"} 1\n"));
        assert!(text.contains("reqs{route=\"b\"} 2\n"));
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn histogram_buckets_are_cumulative_and_inf_equals_count() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render();
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 3\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lat_count 4\n"), "{text}");
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.05).abs() < 1e-9);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn boundary_observation_lands_in_le_bucket() {
        let h = Histogram::detached(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.0.buckets[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let r = Registry::new();
            r.counter("a_total", "a");
            r.gauge("b", "b");
            r.histogram("c_seconds", "c", &DURATION_BOUNDS_SECONDS);
            r.render()
        };
        assert_eq!(build(), build());
    }
}
