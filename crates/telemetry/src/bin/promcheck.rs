//! Reads a Prometheus text exposition from stdin and validates it with
//! [`spade_telemetry::conformance::check_detailed`]. Exits non-zero on any
//! violation. `--min-histograms N` additionally requires at least N
//! histogram families; `--require <family>` (repeatable) requires the
//! named family to be present with its series label signatures sorted.
//!
//! CI pipes a live `/metrics` scrape through this:
//! `curl -s localhost:7878/metrics | promcheck --min-histograms 3 \
//!      --require spade_serve_graph_cost_units`

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut min_histograms = 0usize;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-histograms" => {
                min_histograms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-histograms needs an integer");
            }
            "--require" => {
                required.push(args.next().expect("--require needs a family name"));
            }
            other => {
                eprintln!("promcheck: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promcheck: failed to read stdin: {e}");
        return ExitCode::FAILURE;
    }
    match spade_telemetry::conformance::check_detailed(&text) {
        Ok((summary, details)) => {
            if summary.histograms < min_histograms {
                eprintln!(
                    "promcheck: expected >= {min_histograms} histograms, found {}",
                    summary.histograms
                );
                return ExitCode::FAILURE;
            }
            for family in &required {
                let Some(detail) = details.iter().find(|d| &d.name == family) else {
                    eprintln!("promcheck: required family {family} not present");
                    return ExitCode::FAILURE;
                };
                if let Some(w) = detail.series.windows(2).find(|w| w[0] > w[1]) {
                    eprintln!(
                        "promcheck: family {family} series not label-sorted: {:?} after {:?}",
                        w[1], w[0]
                    );
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "promcheck: ok ({} families, {} histograms, {} series{})",
                summary.families,
                summary.histograms,
                summary.series,
                if required.is_empty() {
                    String::new()
                } else {
                    format!(", {} required present", required.len())
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("promcheck: {e}");
            ExitCode::FAILURE
        }
    }
}
