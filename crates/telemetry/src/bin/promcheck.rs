//! Reads a Prometheus text exposition from stdin and validates it with
//! [`spade_telemetry::conformance::check`]. Exits non-zero on any
//! violation. `--min-histograms N` additionally requires at least N
//! histogram families.
//!
//! CI pipes a live `/metrics` scrape through this:
//! `curl -s localhost:7878/metrics | promcheck --min-histograms 3`

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut min_histograms = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-histograms" => {
                min_histograms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-histograms needs an integer");
            }
            other => {
                eprintln!("promcheck: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promcheck: failed to read stdin: {e}");
        return ExitCode::FAILURE;
    }
    match spade_telemetry::conformance::check(&text) {
        Ok(summary) => {
            if summary.histograms < min_histograms {
                eprintln!(
                    "promcheck: expected >= {min_histograms} histograms, found {}",
                    summary.histograms
                );
                return ExitCode::FAILURE;
            }
            println!(
                "promcheck: ok ({} families, {} histograms, {} series)",
                summary.families, summary.histograms, summary.series
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("promcheck: {e}");
            ExitCode::FAILURE
        }
    }
}
