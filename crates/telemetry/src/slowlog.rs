//! Bounded in-memory slow-request log: keeps the N slowest request traces
//! whose duration met a threshold, for surfacing at `GET /debug/slow`.

use std::sync::Mutex;

/// One logged request.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Monotone per-process request id.
    pub id: u64,
    /// Route label, e.g. `explore`.
    pub route: &'static str,
    /// Name of the graph that served the request.
    pub graph: String,
    /// HTTP status returned.
    pub status: u16,
    /// Snapshot generation that served the request.
    pub generation: u64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: u64,
    /// Unix timestamp (milliseconds) at completion.
    pub unix_ms: u64,
    /// Rendered span-tree JSON (a `{"total_us":..,"spans":[..]}` object).
    pub trace_json: String,
}

impl SlowEntry {
    fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"route\":\"{}\",\"graph\":\"{}\",\"status\":{},\"generation\":{},\"duration_ms\":{},\"unix_ms\":{},\"trace\":{}}}",
            self.id, self.route, self.graph, self.status, self.generation, self.duration_ms,
            self.unix_ms, self.trace_json,
        )
    }
}

/// Keeps the `capacity` worst (slowest) entries at or over `threshold_ms`.
pub struct SlowLog {
    threshold_ms: u64,
    capacity: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    pub fn new(threshold_ms: u64, capacity: usize) -> Self {
        SlowLog { threshold_ms, capacity: capacity.max(1), entries: Mutex::new(Vec::new()) }
    }

    pub fn threshold_ms(&self) -> u64 {
        self.threshold_ms
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an entry if it meets the threshold and is among the worst
    /// `capacity` seen so far.
    pub fn record(&self, entry: SlowEntry) {
        if entry.duration_ms < self.threshold_ms {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if entries.len() < self.capacity {
            entries.push(entry);
            return;
        }
        // Replace the fastest logged entry if the new one is slower;
        // ties keep the incumbent (earlier ids win).
        if let Some(min_idx) = (0..entries.len())
            .min_by_key(|&i| (entries[i].duration_ms, u64::MAX - entries[i].id))
        {
            if entry.duration_ms > entries[min_idx].duration_ms {
                entries[min_idx] = entry;
            }
        }
    }

    /// The logged entries, slowest first (ties by ascending id).
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let mut entries = self.entries.lock().unwrap().clone();
        entries.sort_by_key(|e| (u64::MAX - e.duration_ms, e.id));
        entries
    }

    /// Renders the whole log as one JSON object.
    pub fn to_json(&self) -> String {
        let entries = self.snapshot();
        let mut out = format!(
            "{{\"threshold_ms\":{},\"capacity\":{},\"entries\":[",
            self.threshold_ms, self.capacity
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, duration_ms: u64) -> SlowEntry {
        SlowEntry {
            id,
            route: "explore",
            graph: "default".to_owned(),
            status: 200,
            generation: 1,
            duration_ms,
            unix_ms: 0,
            trace_json: "{\"total_us\":0,\"spans\":[]}".to_owned(),
        }
    }

    #[test]
    fn keeps_only_the_worst_n() {
        let log = SlowLog::new(0, 2);
        log.record(entry(1, 10));
        log.record(entry(2, 30));
        log.record(entry(3, 20));
        log.record(entry(4, 5)); // too fast to displace anything
        let ids: Vec<u64> = log.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(ids, [2, 3]);
    }

    #[test]
    fn threshold_filters_entries() {
        let log = SlowLog::new(100, 4);
        log.record(entry(1, 99));
        log.record(entry(2, 100));
        assert_eq!(log.snapshot().len(), 1);
    }

    #[test]
    fn json_has_stable_envelope() {
        let log = SlowLog::new(5, 3);
        log.record(entry(7, 12));
        let json = log.to_json();
        assert!(json.starts_with("{\"threshold_ms\":5,\"capacity\":3,\"entries\":["), "{json}");
        assert!(json.contains("\"id\":7"), "{json}");
        assert!(json.contains("\"graph\":\"default\""), "{json}");
        assert!(json.contains("\"trace\":{\"total_us\":0"), "{json}");
    }
}
