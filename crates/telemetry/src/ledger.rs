//! Request analytics ledger: ground truth for what each request cost.
//!
//! One [`LedgerRecord`] is written per completed request into a bounded
//! ring (lock-light: one `Mutex` per slot, writers touch only their own
//! slot picked by an atomic ticket). Alongside the ring, streaming
//! per-graph **cost profiles** (EWMA + P² quantile sketches of actual cost
//! and latency — no sample retention) and a global **estimate-vs-actual
//! scorecard** (q-error distribution of the admission cost estimate
//! against measured cost) accumulate from the same records.
//!
//! Only *cold, successful* requests update profiles and the scorecard:
//! cache hits and shed/failed requests land in the ring for inspection but
//! carry no evaluation cost signal. Because the P² sketch is plain `f64`
//! arithmetic over the insertion sequence, a serial request sequence
//! produces bit-identical profile state at any evaluation thread count —
//! the property the serve-layer determinism suite pins.
//!
//! With the `noop` cargo feature every record path returns immediately and
//! the ring holds no slots; snapshots render empty. This is the baseline
//! for the `bench_serve` overhead gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a 64-bit hash of a canonical request key. Dependency-free and
/// stable across platforms; used so the ledger never retains request
/// bodies, only a correlatable fingerprint.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How the result cache participated in a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache; no evaluation ran.
    Hit,
    /// Looked up, absent, evaluated (and possibly inserted).
    Miss,
    /// Cache skipped entirely (profiled/timed requests, cache disabled).
    Bypass,
}

impl CacheOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Coarse response classification for ledger records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseClass {
    /// 200: evaluated (or served warm) successfully.
    Ok,
    /// 504: deadline expired mid-evaluation.
    Timeout,
    /// 503: shed by admission control before evaluation.
    Shed,
    /// Any other failure after routing (panic isolation, faults).
    Error,
}

impl ResponseClass {
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseClass::Ok => "ok",
            ResponseClass::Timeout => "timeout",
            ResponseClass::Shed => "shed",
            ResponseClass::Error => "error",
        }
    }
}

/// One compact record per completed request. Response bodies are never
/// retained — the canonical key is kept only as [`key_hash`].
#[derive(Clone, Debug)]
pub struct LedgerRecord {
    /// Server-assigned request id.
    pub id: u64,
    pub graph: String,
    pub generation: u64,
    pub route: &'static str,
    /// FNV-1a of the canonical request key ([`key_hash`]).
    pub key_hash: u64,
    /// The admission-control cost estimate for this request.
    pub estimated_cost: u64,
    /// Measured work: cells + facts touched by the engine shards.
    pub actual_cost: u64,
    pub cells: u64,
    pub facts: u64,
    pub cache: CacheOutcome,
    pub class: ResponseClass,
    /// End-to-end handler latency in microseconds.
    pub total_us: u64,
    /// Top-level stage durations from the span tree, in stage order.
    pub stages: Vec<(&'static str, u64)>,
    /// Whether this request breached the configured latency SLO.
    pub slo_breach: bool,
    pub unix_ms: u64,
}

impl LedgerRecord {
    /// Renders the record as a JSON object (deterministic key order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"id\":{},\"graph\":\"{}\",\"generation\":{},\"route\":\"{}\",\
             \"key_hash\":\"{:016x}\",\"estimated_cost\":{},\"actual_cost\":{},\
             \"cells\":{},\"facts\":{},\"cache\":\"{}\",\"class\":\"{}\",\
             \"total_us\":{},\"slo_breach\":{},\"unix_ms\":{},\"stages\":{{",
            self.id,
            self.graph,
            self.generation,
            self.route,
            self.key_hash,
            self.estimated_cost,
            self.actual_cost,
            self.cells,
            self.facts,
            self.cache.as_str(),
            self.class.as_str(),
            self.total_us,
            self.slo_breach,
            self.unix_ms,
        );
        for (i, (name, us)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{us}");
        }
        out.push_str("}}");
        out
    }
}

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): five
/// markers tracking a single target quantile with O(1) memory and no
/// sample retention. Below five observations it falls back to an exact
/// nearest-rank over the partial buffer. Pure `f64` arithmetic — the
/// estimate is a deterministic function of the observation *sequence*.
#[derive(Clone, Debug)]
pub struct P2 {
    q: f64,
    n: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
}

impl P2 {
    pub fn new(quantile: f64) -> Self {
        let q = quantile.clamp(0.0, 1.0);
        P2 {
            q,
            n: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn observe(&mut self, x: f64) {
        if self.n < 5 {
            self.heights[self.n as usize] = x;
            self.n += 1;
            let filled = self.n as usize;
            self.heights[..filled].sort_by(f64::total_cmp);
            return;
        }
        // Locate the marker cell containing x, extending extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && self.heights[k + 1] <= x {
                k += 1;
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.heights[i]
                    + d / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + d)
                            * (self.heights[i + 1] - self.heights[i])
                            / right
                            + (self.positions[i + 1] - self.positions[i] - d)
                                * (self.heights[i] - self.heights[i - 1])
                                / -left);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else if d > 0.0 {
                        self.heights[i] + (self.heights[i + 1] - self.heights[i]) / right
                    } else {
                        self.heights[i] - (self.heights[i - 1] - self.heights[i]) / left
                    };
                self.positions[i] += d;
            }
        }
        self.n += 1;
    }

    /// Current quantile estimate; 0 before any observation.
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.n <= 5 {
            // Exact nearest-rank over the sorted partial buffer.
            let filled = self.n as usize;
            let rank = ((self.q * filled as f64).ceil() as usize).clamp(1, filled);
            return self.heights[rank - 1];
        }
        self.heights[2]
    }
}

const EWMA_ALPHA: f64 = 0.1;

fn ewma(current: f64, x: f64, samples: u64) -> f64 {
    if samples == 0 {
        x
    } else {
        EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * current
    }
}

/// Streaming cost/latency profile for one graph (or the overall aggregate).
#[derive(Clone, Debug)]
struct Profile {
    requests: u64,
    cost_ewma: f64,
    est_cost_ewma: f64,
    latency_ewma_us: f64,
    cost_q: [P2; 3],
    latency_q: [P2; 3],
    slo_breaches: u64,
}

impl Profile {
    fn new() -> Self {
        let sketches = || [P2::new(0.5), P2::new(0.95), P2::new(0.99)];
        Profile {
            requests: 0,
            cost_ewma: 0.0,
            est_cost_ewma: 0.0,
            latency_ewma_us: 0.0,
            cost_q: sketches(),
            latency_q: sketches(),
            slo_breaches: 0,
        }
    }

    fn observe(&mut self, estimated: u64, actual: u64, latency_us: u64, breach: bool) {
        let cost = actual as f64;
        let lat = latency_us as f64;
        self.cost_ewma = ewma(self.cost_ewma, cost, self.requests);
        self.est_cost_ewma = ewma(self.est_cost_ewma, estimated as f64, self.requests);
        self.latency_ewma_us = ewma(self.latency_ewma_us, lat, self.requests);
        for s in &mut self.cost_q {
            s.observe(cost);
        }
        for s in &mut self.latency_q {
            s.observe(lat);
        }
        self.requests += 1;
        if breach {
            self.slo_breaches += 1;
        }
    }

    fn snapshot(&self, graph: &str) -> ProfileSnapshot {
        ProfileSnapshot {
            graph: graph.to_owned(),
            requests: self.requests,
            cost_ewma: self.cost_ewma,
            est_cost_ewma: self.est_cost_ewma,
            cost_p50: self.cost_q[0].estimate(),
            cost_p95: self.cost_q[1].estimate(),
            cost_p99: self.cost_q[2].estimate(),
            latency_ewma_us: self.latency_ewma_us,
            latency_p50_us: self.latency_q[0].estimate(),
            latency_p95_us: self.latency_q[1].estimate(),
            latency_p99_us: self.latency_q[2].estimate(),
            slo_breaches: self.slo_breaches,
        }
    }
}

/// A point-in-time view of one graph's cost profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSnapshot {
    pub graph: String,
    /// Cold, successful requests folded into this profile.
    pub requests: u64,
    pub cost_ewma: f64,
    pub est_cost_ewma: f64,
    pub cost_p50: f64,
    pub cost_p95: f64,
    pub cost_p99: f64,
    pub latency_ewma_us: f64,
    pub latency_p50_us: f64,
    pub latency_p95_us: f64,
    pub latency_p99_us: f64,
    pub slo_breaches: u64,
}

impl ProfileSnapshot {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"requests\":{},\"cost_ewma\":{:.4},\
             \"est_cost_ewma\":{:.4},\"cost_p50\":{:.4},\"cost_p95\":{:.4},\
             \"cost_p99\":{:.4},\"latency_ewma_us\":{:.4},\
             \"latency_p50_us\":{:.4},\"latency_p95_us\":{:.4},\
             \"latency_p99_us\":{:.4},\"slo_breaches\":{}}}",
            self.graph,
            self.requests,
            self.cost_ewma,
            self.est_cost_ewma,
            self.cost_p50,
            self.cost_p95,
            self.cost_p99,
            self.latency_ewma_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.slo_breaches,
        )
    }
}

/// The estimate-vs-actual scorecard: q-error distribution of the admission
/// cost estimate against measured cost, with a running geometric mean.
struct Scorecard {
    count: u64,
    ln_sum: f64,
    max: f64,
    q: [P2; 3],
}

impl Scorecard {
    fn new() -> Self {
        Scorecard {
            count: 0,
            ln_sum: 0.0,
            max: 0.0,
            q: [P2::new(0.5), P2::new(0.95), P2::new(0.99)],
        }
    }

    fn observe(&mut self, estimated: u64, actual: u64) {
        // q-error = max(est/act, act/est), inputs clamped to ≥1 so an
        // estimate and a measurement can never divide by zero.
        let est = estimated.max(1) as f64;
        let act = actual.max(1) as f64;
        let q_err = (est / act).max(act / est);
        self.count += 1;
        self.ln_sum += q_err.ln();
        if q_err > self.max {
            self.max = q_err;
        }
        for s in &mut self.q {
            s.observe(q_err);
        }
    }

    fn snapshot(&self) -> ScorecardSnapshot {
        ScorecardSnapshot {
            count: self.count,
            q_error_geo_mean: if self.count == 0 {
                0.0
            } else {
                (self.ln_sum / self.count as f64).exp()
            },
            q_error_p50: self.q[0].estimate(),
            q_error_p95: self.q[1].estimate(),
            q_error_p99: self.q[2].estimate(),
            q_error_max: self.max,
        }
    }
}

/// A point-in-time view of the estimate-vs-actual scorecard.
#[derive(Clone, Debug, PartialEq)]
pub struct ScorecardSnapshot {
    pub count: u64,
    pub q_error_geo_mean: f64,
    pub q_error_p50: f64,
    pub q_error_p95: f64,
    pub q_error_p99: f64,
    pub q_error_max: f64,
}

impl ScorecardSnapshot {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"q_error_geo_mean\":{:.4},\"q_error_p50\":{:.4},\
             \"q_error_p95\":{:.4},\"q_error_p99\":{:.4},\"q_error_max\":{:.4}}}",
            self.count,
            self.q_error_geo_mean,
            self.q_error_p50,
            self.q_error_p95,
            self.q_error_p99,
            self.q_error_max,
        )
    }
}

type Slot = Mutex<Option<(u64, LedgerRecord)>>;

/// The request analytics ledger: bounded record ring + per-graph cost
/// profiles + global scorecard. All methods are `&self`; the ring is
/// lock-light (writers lock only the one slot their ticket maps to).
pub struct Ledger {
    seq: AtomicU64,
    slots: Box<[Slot]>,
    /// `(graph name, profile)`, sorted by name; fixed at construction so
    /// snapshot/metric iteration order is deterministic.
    profiles: Vec<(String, Mutex<Profile>)>,
    overall: Mutex<Profile>,
    scorecard: Mutex<Scorecard>,
}

impl Ledger {
    /// A ledger holding the `capacity` most recent records, with one cost
    /// profile per name in `graphs` (plus the overall aggregate). Graph
    /// names are sorted internally; unknown graphs still land in the ring
    /// and the overall profile.
    pub fn new(capacity: usize, graphs: &[String]) -> Self {
        let cap = if cfg!(feature = "noop") { 0 } else { capacity.max(1) };
        let mut names: Vec<String> = graphs.to_vec();
        names.sort();
        names.dedup();
        Ledger {
            seq: AtomicU64::new(0),
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            profiles: names.into_iter().map(|n| (n, Mutex::new(Profile::new()))).collect(),
            overall: Mutex::new(Profile::new()),
            scorecard: Mutex::new(Scorecard::new()),
        }
    }

    /// Ring capacity (0 under the `noop` feature).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever recorded (not just currently retained).
    pub fn recorded_total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records one completed request. Cold (`cache != Hit`), successful
    /// (`class == Ok`) records additionally fold into the graph + overall
    /// cost profiles and the q-error scorecard; everything lands in the
    /// ring.
    pub fn record(&self, rec: LedgerRecord) {
        if cfg!(feature = "noop") {
            return;
        }
        if rec.class == ResponseClass::Ok && rec.cache != CacheOutcome::Hit {
            if let Ok(idx) =
                self.profiles.binary_search_by(|(name, _)| name.as_str().cmp(&rec.graph))
            {
                self.profiles[idx].1.lock().unwrap().observe(
                    rec.estimated_cost,
                    rec.actual_cost,
                    rec.total_us,
                    rec.slo_breach,
                );
            }
            self.overall.lock().unwrap().observe(
                rec.estimated_cost,
                rec.actual_cost,
                rec.total_us,
                rec.slo_breach,
            );
            self.scorecard.lock().unwrap().observe(rec.estimated_cost, rec.actual_cost);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap() = Some((seq, rec));
    }

    /// The `n` most recent records, newest first.
    pub fn tail(&self, n: usize) -> Vec<LedgerRecord> {
        let mut entries: Vec<(u64, LedgerRecord)> =
            self.slots.iter().filter_map(|s| s.lock().unwrap().clone()).collect();
        entries.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        entries.truncate(n);
        entries.into_iter().map(|(_, r)| r).collect()
    }

    /// Per-graph profile snapshots in sorted-name order.
    pub fn profile_snapshots(&self) -> Vec<ProfileSnapshot> {
        self.profiles.iter().map(|(name, p)| p.lock().unwrap().snapshot(name)).collect()
    }

    /// The aggregate profile over every graph (drives `auto` capacity).
    pub fn overall_snapshot(&self) -> ProfileSnapshot {
        self.overall.lock().unwrap().snapshot("_overall")
    }

    /// The estimate-vs-actual scorecard.
    pub fn scorecard_snapshot(&self) -> ScorecardSnapshot {
        self.scorecard.lock().unwrap().snapshot()
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn record(graph: &str, est: u64, actual: u64, us: u64) -> LedgerRecord {
        LedgerRecord {
            id: 1,
            graph: graph.to_owned(),
            generation: 1,
            route: "explore",
            key_hash: key_hash("{}"),
            estimated_cost: est,
            actual_cost: actual,
            cells: actual / 2,
            facts: actual - actual / 2,
            cache: CacheOutcome::Miss,
            class: ResponseClass::Ok,
            total_us: us,
            stages: vec![("evaluation", us)],
            slo_breach: false,
            unix_ms: 0,
        }
    }

    #[test]
    fn key_hash_is_fnv1a() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(key_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(key_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(key_hash("{\"k\":2}"), key_hash("{\"k\":1}"));
    }

    #[test]
    fn p2_tracks_quantiles_of_uniform_stream() {
        // Deterministic LCG over [0, 1000).
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        let mut p50 = P2::new(0.5);
        let mut p95 = P2::new(0.95);
        let mut exact = Vec::new();
        for _ in 0..5000 {
            let x = next();
            p50.observe(x);
            p95.observe(x);
            exact.push(x);
        }
        exact.sort_by(f64::total_cmp);
        let true_p50 = exact[2499];
        let true_p95 = exact[4749];
        assert!((p50.estimate() - true_p50).abs() < 50.0, "{} vs {true_p50}", p50.estimate());
        assert!((p95.estimate() - true_p95).abs() < 50.0, "{} vs {true_p95}", p95.estimate());
    }

    #[test]
    fn p2_small_samples_are_exact_nearest_rank() {
        let mut p50 = P2::new(0.5);
        assert_eq!(p50.estimate(), 0.0);
        for x in [30.0, 10.0, 20.0] {
            p50.observe(x);
        }
        assert_eq!(p50.estimate(), 20.0);
        let mut p99 = P2::new(0.99);
        p99.observe(7.0);
        assert_eq!(p99.estimate(), 7.0);
    }

    #[test]
    fn p2_is_deterministic_for_a_fixed_sequence() {
        let run = || {
            let mut s = P2::new(0.95);
            for i in 0..1000u64 {
                s.observe(((i * 37) % 251) as f64);
            }
            s.estimate()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn ring_wraps_and_tail_is_newest_first() {
        let ledger = Ledger::new(4, &["g".to_owned()]);
        for i in 0..10u64 {
            let mut r = record("g", 10, 10, 100);
            r.id = i;
            ledger.record(r);
        }
        assert_eq!(ledger.recorded_total(), 10);
        let tail = ledger.tail(10);
        assert_eq!(tail.len(), 4, "ring keeps only capacity records");
        let ids: Vec<u64> = tail.iter().map(|r| r.id).collect();
        assert_eq!(ids, [9, 8, 7, 6]);
        assert_eq!(ledger.tail(2).len(), 2);
    }

    #[test]
    fn only_cold_ok_records_update_profiles() {
        let ledger = Ledger::new(8, &["a".to_owned(), "b".to_owned()]);
        ledger.record(record("a", 100, 200, 1000));
        let mut hit = record("a", 100, 0, 5);
        hit.cache = CacheOutcome::Hit;
        ledger.record(hit);
        let mut shed = record("a", 900, 0, 2);
        shed.class = ResponseClass::Shed;
        ledger.record(shed);
        let mut unknown = record("zz", 50, 70, 300);
        unknown.cache = CacheOutcome::Bypass;
        ledger.record(unknown);

        let profiles = ledger.profile_snapshots();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].graph, "a");
        assert_eq!(profiles[0].requests, 1, "hit and shed excluded");
        assert_eq!(profiles[0].cost_ewma, 200.0);
        assert_eq!(profiles[0].cost_p50, 200.0);
        assert_eq!(profiles[1].graph, "b");
        assert_eq!(profiles[1].requests, 0);
        // The unknown graph still reaches the ring and the overall profile.
        assert_eq!(ledger.tail(10).len(), 4);
        assert_eq!(ledger.overall_snapshot().requests, 2);
        let card = ledger.scorecard_snapshot();
        assert_eq!(card.count, 2);
        assert!(card.q_error_geo_mean.is_finite() && card.q_error_geo_mean >= 1.0);
    }

    #[test]
    fn scorecard_geo_mean_matches_hand_computation() {
        let ledger = Ledger::new(4, &["g".to_owned()]);
        ledger.record(record("g", 200, 100, 10)); // q-error 2
        ledger.record(record("g", 100, 800, 10)); // q-error 8
        let card = ledger.scorecard_snapshot();
        assert_eq!(card.count, 2);
        assert!((card.q_error_geo_mean - 4.0).abs() < 1e-9, "{}", card.q_error_geo_mean);
        assert_eq!(card.q_error_max, 8.0);
    }

    #[test]
    fn slo_breaches_accumulate_per_graph() {
        let ledger = Ledger::new(4, &["g".to_owned()]);
        let mut r = record("g", 10, 10, 5000);
        r.slo_breach = true;
        ledger.record(r);
        ledger.record(record("g", 10, 10, 100));
        assert_eq!(ledger.profile_snapshots()[0].slo_breaches, 1);
    }

    #[test]
    fn record_json_shape_is_stable() {
        let json = record("g", 3, 4, 5).to_json();
        for key in [
            "\"graph\":\"g\"",
            "\"estimated_cost\":3",
            "\"actual_cost\":4",
            "\"cache\":\"miss\"",
            "\"class\":\"ok\"",
            "\"stages\":{\"evaluation\":5}",
            "\"slo_breach\":false",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"key_hash\":\""));
    }

    #[test]
    fn concurrent_records_all_land() {
        let ledger = std::sync::Arc::new(Ledger::new(64, &["g".to_owned()]));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ledger = std::sync::Arc::clone(&ledger);
                scope.spawn(move || {
                    for i in 0..16u64 {
                        let mut r = record("g", 10, 10 + i, 100);
                        r.id = t * 100 + i;
                        ledger.record(r);
                    }
                });
            }
        });
        assert_eq!(ledger.recorded_total(), 64);
        assert_eq!(ledger.tail(64).len(), 64);
        assert_eq!(ledger.profile_snapshots()[0].requests, 64);
    }
}
