//! Structural summaries of RDF graphs, in the style of RDFQuotient
//! (Goasdoué, Guzewicz, Manolescu — VLDB J. 2020), the tool Spade uses in
//! its offline phase.
//!
//! Section 3: "Upon loading an RDF graph, we first build a structural
//! summary thereof ... The summary captures all the properties occurring in
//! the graph and proposes a set of RDF node groups such that the RDF nodes
//! in each group are considered equivalent. ... RDF nodes in the same
//! equivalence class tend to have many common properties, making them
//! interesting candidates to be analyzed together."
//!
//! Two quotient summaries are provided, both over *data* properties (type
//! triples are set aside, as in RDFQuotient):
//!
//! * [`characteristic_sets`] — nodes are equivalent iff they have exactly
//!   the same set of outgoing data properties (the classic characteristic-
//!   set quotient; the strongest grouping);
//! * [`weak_summary`] — RDFQuotient's *weak* equivalence: properties are
//!   clustered into source cliques (two properties related when they
//!   co-occur on some subject, transitively), and nodes are equivalent iff
//!   their properties fall in the same clique. This is the summary Spade's
//!   summary-based CFS selection consumes by default.

mod union_find;

pub use union_find::UnionFind;

use spade_rdf::{Graph, TermId};
use std::collections::HashMap;

/// One group of structurally equivalent RDF nodes.
#[derive(Clone, Debug)]
pub struct EquivalenceClass {
    /// Dense class identifier (index into [`Summary::classes`]).
    pub id: usize,
    /// The distinct outgoing data properties of members, sorted.
    pub properties: Vec<TermId>,
    /// The member nodes, sorted.
    pub members: Vec<TermId>,
}

/// A structural summary: a partition of the graph's subject nodes.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// The equivalence classes, largest first.
    pub classes: Vec<EquivalenceClass>,
    class_of: HashMap<TermId, usize>,
}

impl Summary {
    /// The class a node belongs to, if it has any outgoing data property.
    pub fn class_of(&self, node: TermId) -> Option<&EquivalenceClass> {
        self.class_of.get(&node).map(|&i| &self.classes[i])
    }

    /// Number of classes (the summary's node count).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when the summarized graph had no data triples.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    fn finish(mut groups: Vec<(Vec<TermId>, Vec<TermId>)>) -> Summary {
        // Largest classes first: those are the interesting CFS candidates.
        groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
        let mut summary = Summary::default();
        for (id, (mut properties, mut members)) in groups.into_iter().enumerate() {
            properties.sort_unstable();
            properties.dedup();
            members.sort_unstable();
            members.dedup();
            for &m in &members {
                summary.class_of.insert(m, id);
            }
            summary.classes.push(EquivalenceClass { id, properties, members });
        }
        summary
    }
}

/// Collects, for every subject, its set of outgoing data properties
/// (excluding `rdf:type`, which RDFQuotient handles separately).
fn subject_property_sets(graph: &Graph) -> HashMap<TermId, Vec<TermId>> {
    let rdf_type = graph.rdf_type_id();
    let mut sets: HashMap<TermId, Vec<TermId>> = HashMap::new();
    for s in graph.subjects().collect::<Vec<_>>() {
        let mut props: Vec<TermId> =
            graph.outgoing(s).iter().map(|(p, _)| *p).filter(|&p| p != rdf_type).collect();
        props.sort_unstable();
        props.dedup();
        if !props.is_empty() {
            sets.insert(s, props);
        }
    }
    sets
}

/// The characteristic-set quotient: equivalence = identical property sets.
pub fn characteristic_sets(graph: &Graph) -> Summary {
    let sets = subject_property_sets(graph);
    let mut groups: HashMap<Vec<TermId>, Vec<TermId>> = HashMap::new();
    for (node, props) in sets {
        groups.entry(props).or_default().push(node);
    }
    Summary::finish(groups.into_iter().collect())
}

/// RDFQuotient's weak summary: source-clique quotient.
///
/// Properties `p, q` are in the same source clique when some subject has
/// both outgoing (transitive closure); nodes are equivalent when their
/// property sets fall in the same clique.
pub fn weak_summary(graph: &Graph) -> Summary {
    let sets = subject_property_sets(graph);
    // Union properties co-occurring on a subject.
    let mut prop_index: HashMap<TermId, usize> = HashMap::new();
    for props in sets.values() {
        for &p in props {
            let next = prop_index.len();
            prop_index.entry(p).or_insert(next);
        }
    }
    let mut uf = UnionFind::new(prop_index.len());
    for props in sets.values() {
        let first = prop_index[&props[0]];
        for &p in &props[1..] {
            uf.union(first, prop_index[&p]);
        }
    }
    // Group nodes by the clique of (any of) their properties.
    let mut groups: HashMap<usize, (Vec<TermId>, Vec<TermId>)> = HashMap::new();
    for (node, props) in &sets {
        let clique = uf.find(prop_index[&props[0]]);
        let entry = groups.entry(clique).or_default();
        entry.0.extend_from_slice(props);
        entry.1.push(*node);
    }
    Summary::finish(groups.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_rdf::Term;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    /// Graph with two clearly distinct node shapes: "CEOs" (name, netWorth)
    /// and "companies" (area).
    fn two_shape_graph() -> Graph {
        let mut g = Graph::new();
        for n in ["n1", "n2", "n3"] {
            g.insert(iri(n), iri("name"), Term::lit(n));
            g.insert(iri(n), iri("netWorth"), Term::int(10));
        }
        for c in ["c1", "c2"] {
            g.insert(iri(c), iri("area"), Term::lit("Automotive"));
        }
        g
    }

    #[test]
    fn characteristic_sets_partition_by_shape() {
        let g = two_shape_graph();
        let summary = characteristic_sets(&g);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary.classes[0].members.len(), 3);
        assert_eq!(summary.classes[1].members.len(), 2);
        assert_eq!(summary.classes[0].properties.len(), 2);
    }

    #[test]
    fn weak_summary_merges_overlapping_shapes() {
        // n1 has {name}, n2 has {name, netWorth}, n3 has {netWorth}:
        // characteristic sets puts them in 3 classes, weak equivalence in 1.
        let mut g = Graph::new();
        g.insert(iri("n1"), iri("name"), Term::lit("a"));
        g.insert(iri("n2"), iri("name"), Term::lit("b"));
        g.insert(iri("n2"), iri("netWorth"), Term::int(1));
        g.insert(iri("n3"), iri("netWorth"), Term::int(2));
        let cs = characteristic_sets(&g);
        assert_eq!(cs.len(), 3);
        let weak = weak_summary(&g);
        assert_eq!(weak.len(), 1);
        assert_eq!(weak.classes[0].members.len(), 3);
        assert_eq!(weak.classes[0].properties.len(), 2);
    }

    #[test]
    fn weak_summary_keeps_disconnected_cliques_apart() {
        let g = two_shape_graph();
        let summary = weak_summary(&g);
        assert_eq!(summary.len(), 2);
    }

    #[test]
    fn rdf_type_is_not_a_data_property() {
        let mut g = Graph::new();
        g.insert(iri("n1"), Term::iri(spade_rdf::vocab::RDF_TYPE), iri("CEO"));
        g.insert(iri("n1"), iri("name"), Term::lit("a"));
        g.insert(iri("n2"), iri("name"), Term::lit("b"));
        let summary = characteristic_sets(&g);
        // The extra type triple must not split n1 from n2.
        assert_eq!(summary.len(), 1);
        assert_eq!(summary.classes[0].members.len(), 2);
    }

    #[test]
    fn class_lookup_roundtrips() {
        let g = two_shape_graph();
        let n1 = g.dict.id_of(&iri("n1")).unwrap();
        let c1 = g.dict.id_of(&iri("c1")).unwrap();
        let summary = characteristic_sets(&g);
        let class_n1 = summary.class_of(n1).unwrap();
        assert!(class_n1.members.contains(&n1));
        assert_ne!(summary.class_of(c1).unwrap().id, class_n1.id);
        // Objects that are never subjects have no class.
        let lit = g.dict.id_of(&Term::lit("Automotive")).unwrap();
        assert!(summary.class_of(lit).is_none());
    }

    #[test]
    fn classes_sorted_largest_first() {
        let g = two_shape_graph();
        let summary = characteristic_sets(&g);
        for w in summary.classes.windows(2) {
            assert!(w[0].members.len() >= w[1].members.len());
        }
    }
}
