//! Disjoint-set forest with path compression and union by size, used for
//! the property-clique computation of the weak summary.

/// A union-find over dense `usize` elements.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    /// The canonical representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            // Path halving.
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets.
    pub fn set_count(&mut self) -> usize {
        (0..self.len()).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn transitive_merging() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        uf.union(2, 3);
        for i in 0..5 {
            assert!(uf.same(0, i), "element {i}");
        }
        assert!(!uf.same(0, 5));
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
