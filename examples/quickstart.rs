//! Quickstart: find the k most interesting aggregates in an RDF graph.
//!
//! This loads an N-Triples document (the paper's Figure 1 CEOs example,
//! serialized on the fly), runs the full Spade pipeline, and prints the
//! top-k aggregates with a preview of their groups.
//!
//! Run: `cargo run --release --example quickstart`

use spade::prelude::*;

fn main() {
    // Any N-Triples source works; we serialize the built-in Figure 1 graph
    // to demonstrate the parser path a real application would use.
    let nt = spade::rdf::write_ntriples(&spade::datagen::ceos_figure1());
    let mut graph = parse_ntriples(&nt).expect("valid N-Triples");
    println!("loaded {} triples over {} subjects\n", graph.len(), graph.subject_count());

    let config = SpadeConfig {
        k: 5,
        interestingness: Interestingness::Variance,
        min_cfs_size: 2, // the example graph has only 2 CEOs
        min_support: 0.4,
        max_distinct_ratio: 5.0, // tiny graph: allow high-cardinality dims
        ..SpadeConfig::default()
    };
    let report = Spade::new(config).run(&mut graph);

    println!(
        "analyzed {} CFSs, {} direct properties, {} derived properties,",
        report.profile.cfs_count,
        report.profile.direct_properties,
        report.profile.derivations.total()
    );
    println!(
        "enumerated {} aggregates in {:?}\n",
        report.profile.aggregates,
        report.timings.online_total()
    );

    println!("top-{} most interesting aggregates (variance):", report.top.len());
    for (rank, agg) in report.top.iter().enumerate() {
        println!("{}. [score {:.3e}] {}", rank + 1, agg.score, agg.description());
        for (group, value) in agg.sample_groups.iter().take(4) {
            println!("     {group:<30} {value:>16.2}");
        }
    }
}
