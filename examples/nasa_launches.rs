//! Exploring the NASA graph — the Figure 6(b)/(c) stories.
//!
//! The simulated graph reproduces two skews the paper's Spade discovered on
//! the real NASA dataset: (b) "number of launches by launch site and
//! spacecraft/agency" peaks sharply at Plesetsk/Baikonur for USSR
//! spacecraft, and (c) "average mass of spacecrafts by discipline" stands
//! out for Human crew / Microgravity / Life sciences / Repair. Both stories
//! only exist thanks to *path derivations* (`spacecraft/agency`).
//!
//! Run: `cargo run --release --example nasa_launches`

use spade::datagen::{realistic, RealisticConfig};
use spade::prelude::*;

fn main() {
    let mut graph = realistic::nasa(&RealisticConfig { scale: 1200, seed: 1969 });
    println!("NASA graph: {} triples\n", graph.len());

    let config = SpadeConfig {
        k: 10,
        interestingness: Interestingness::Variance,
        min_support: 0.3,
        dimension_stop_list: vec!["name".into()],
        ..SpadeConfig::default()
    };
    let report = Spade::new(config).run(&mut graph);

    println!("top-{} aggregates:", report.top.len());
    for (rank, agg) in report.top.iter().enumerate() {
        println!("\n{}. {}   [score {:.4}]", rank + 1, agg.description(), agg.score);
        for (group, value) in agg.sample_groups.iter().take(6) {
            println!("     {group:<44} {value:>14.2}");
        }
    }

    // Check for the two planted stories.
    let launch_story = report
        .top
        .iter()
        .find(|t| t.mda.starts_with("count") && t.dims.iter().any(|d| d == "launchsite"));
    let mass_story = report
        .top
        .iter()
        .find(|t| t.mda.contains("mass") && t.dims.iter().any(|d| d == "discipline"));
    println!("\n=== Figure 6 stories ===");
    println!(
        "(b) launches by launch site: {}",
        launch_story.map_or("not in top-k".into(), |t| t.description())
    );
    println!(
        "(c) spacecraft mass by discipline: {}",
        mass_story.map_or("not in top-k".into(), |t| t.description())
    );
}
