//! Using the cube layer directly: evaluate one lattice of MDAs over your
//! own columns, without the automatic pipeline.
//!
//! This reproduces the paper's Example 3 ("number of CEOs grouped by
//! nationality, gender, and area of the companies they manage") plus
//! Variations 1–2, on the exact Figure 1 data — and shows the classical
//! ArrayCube/PGCube errors side by side with MVDCube's correct results.
//!
//! Run: `cargo run --release --example cube_api`

use spade::cube::{array_cube, mvd_cube, pg_cube, PgCubeVariant};
use spade::prelude::*;
use spade::storage::{CategoricalColumn, NumericColumn};

fn main() {
    // The two CEOs of Figure 1, as storage columns.
    let nationality = CategoricalColumn::from_rows(
        "nationality",
        &[vec!["Angola"], vec!["Brazil", "France", "Lebanon", "Nigeria"]],
    );
    let gender = CategoricalColumn::from_rows("gender", &[vec!["Female"], vec![]]);
    let area = CategoricalColumn::from_rows(
        "company/area",
        &[vec!["Diamond", "Manufacturer", "Natural gas"], vec!["Automotive", "Manufacturer"]],
    );
    let net_worth =
        NumericColumn::from_rows("netWorth", &[vec![2.8e9], vec![1.2e8]]).preaggregate();
    let age = NumericColumn::from_rows("age", &[vec![47.0], vec![66.0]]).preaggregate();

    let spec = CubeSpec::new(
        vec![&nationality, &gender, &area],
        vec![
            MeasureSpec { preagg: &net_worth, fns: vec![AggFn::Sum] },
            MeasureSpec { preagg: &age, fns: vec![AggFn::Avg] },
        ],
        2,
    );
    // `threads` parallelizes *within* this one lattice: the region-sharded
    // engine fans the flush cascade and measure emit out over the workers
    // (0 = all cores). MVDCube results are invariant under the shard
    // decomposition — cells are set unions, measures are computed from
    // complete cells — so this is purely a latency knob for the
    // single-big-lattice interactive shape: any value is bit-identical to
    // `threads: 1`. (In the full pipeline, `SpadeConfig::threads` feeds
    // the same knob through `evaluate_cfs`.)
    let opts = MvdCubeOptions { threads: 0, ..Default::default() };
    // The ArrayCube/PGCube baselines aggregate f64 partial sums, which are
    // plan-*sensitive* in the last bits — the experiment convention is to
    // run them on the default single-worker plan.
    let baseline_opts = MvdCubeOptions::default();

    let correct = mvd_cube(&spec, &opts);
    let classical = array_cube(&spec, &baseline_opts);
    let postgres = pg_cube(&spec, PgCubeVariant::Distinct, &baseline_opts);

    // The A4 node of Figure 4: count of CEOs by company/area alone.
    let area_mask = 0b100;
    println!("count of CEOs / sum(netWorth) / avg(age) by company/area:");
    println!(
        "{:<14} {:>22} {:>22} {:>22}",
        "group", "MVDCube (correct)", "ArrayCube", "PGCube^d"
    );
    let node = correct.node(area_mask).unwrap();
    let mut keys: Vec<_> = node.visible_groups().map(|(k, _)| k.clone()).collect();
    keys.sort();
    for key in keys {
        let label = area.label(key[0]);
        let fmt = |r: &spade::cube::CubeResult| {
            let v = &r.node(area_mask).unwrap().groups[&key];
            format!(
                "{:>6} {:>9.2e} {:>5.1}",
                v[0].unwrap_or(f64::NAN),
                v[1].unwrap_or(f64::NAN),
                v[2].unwrap_or(f64::NAN)
            )
        };
        println!(
            "{:<14} {:>22} {:>22} {:>22}",
            label,
            fmt(&correct),
            fmt(&classical),
            fmt(&postgres)
        );
    }
    println!();
    println!("ArrayCube counts 5 Manufacturer CEOs (Figure 4's bug) and PGCube^d fixes");
    println!("the count but not sum/avg (Variations 1-2); MVDCube is correct throughout.");
}
