//! Exporting discovered insights as SPARQL 1.1 queries.
//!
//! Section 2 of the paper: an insight "can be expressed in a language such
//! as SPARQL 1.1 … and evaluated by any RDF query engine". This example
//! finds an interesting aggregate on the Figure 1 graph and prints the
//! SPARQL query a user would run in their own triple store (Virtuoso,
//! Oxigraph, Jena, …) to reproduce it — with the per-fact pre-aggregation
//! subquery that keeps the multi-valued-dimension semantics correct.
//!
//! Run: `cargo run --release --example sparql_export`

use spade::core::sparql::{mda_to_sparql, SparqlMeasure};
use spade::core::{analysis, cfs, offline, AttrKind};
use spade::prelude::*;

fn main() {
    let graph = spade::datagen::ceos_figure1();
    let config = SpadeConfig {
        min_cfs_size: 2,
        min_support: 0.4,
        max_distinct_ratio: 5.0,
        ..SpadeConfig::default()
    };

    // Steps 1–2 of the pipeline, to obtain analyzed attributes.
    let stats = offline::analyze(&graph);
    let (derived, _) = offline::enumerate_derivations(&graph, &stats, &config);
    let cfs_list = cfs::select(&graph, &[cfs::CfsStrategy::TypeBased], &config);
    let ceo_cfs = cfs_list.iter().find(|c| c.name == "type:CEO").expect("CEO CFS");
    let a = analysis::analyze_cfs(&graph, ceo_cfs, &derived, &config);

    let attr =
        |name: &str| &a.attributes.iter().find(|x| x.def.name == name).expect("attribute").def;
    let ceo_class =
        graph.dict.id_of(&Term::iri("http://ceos.example.org/CEO")).expect("CEO class");

    // Example 3: number of CEOs by nationality, gender, company/area.
    println!("--- Example 3: count of CEOs by nationality, gender, company/area ---\n");
    println!(
        "{}\n",
        mda_to_sparql(
            &graph,
            Some(ceo_class),
            &[attr("nationality"), attr("gender"), attr("company/area")],
            SparqlMeasure::FactCount,
        )
    );

    // Variation 1: sum of netWorth by company/area.
    println!("--- Variation 1: sum(netWorth) by company/area ---\n");
    println!(
        "{}\n",
        mda_to_sparql(
            &graph,
            Some(ceo_class),
            &[attr("company/area")],
            SparqlMeasure::Measure(attr("netWorth"), AggFn::Sum),
        )
    );

    // Example 2: average age by nationality and number of companies.
    println!("--- Example 2: avg(age) by nationality, numOf(company) ---\n");
    let num_companies = a
        .attributes
        .iter()
        .find(|x| matches!(x.def.kind, AttrKind::Count(_)) && x.def.name.contains("company"))
        .expect("count derivation");
    println!(
        "{}",
        mda_to_sparql(
            &graph,
            Some(ceo_class),
            &[attr("nationality"), &num_companies.def],
            SparqlMeasure::Measure(attr("age"), AggFn::Avg),
        )
    );
    println!("\nNote the inner '{{ SELECT ?cf … GROUP BY ?cf }}' subqueries: they");
    println!("pre-aggregate per fact, so multi-valued dimensions cannot double-count");
    println!("(the Section 4.2 pitfall).");
}
