//! Computational Lead Finding on a CEOs graph — the paper's motivating
//! application (Section 1): a journalist looks for statistical "leads" in
//! an RDF graph of CEOs, their companies, and political connections.
//!
//! The simulated graph plants a Luanda-Leaks-style story (Angolan CEOs with
//! outlier net worth); Spade surfaces it automatically, without the
//! journalist writing a single SPARQL query.
//!
//! Run: `cargo run --release --example ceo_exploration`

use spade::datagen::{realistic, RealisticConfig};
use spade::prelude::*;

fn main() {
    let mut graph = realistic::ceos(&RealisticConfig { scale: 800, seed: 2024 });
    println!("CEOs graph: {} triples\n", graph.len());

    // Journalists care about deviations from uniformity → variance. The
    // human-in-the-loop stop list (Section 6.1) excludes a dimension the
    // user finds statistically sound but meaningless.
    let config = SpadeConfig {
        k: 8,
        interestingness: Interestingness::Variance,
        min_support: 0.3,
        dimension_stop_list: vec!["name".into()],
        ..SpadeConfig::default()
    }
    .with_early_stop();

    let report = Spade::new(config).run(&mut graph);

    println!(
        "evaluated {} aggregates ({} pruned early by the probabilistic early-stop)\n",
        report.evaluated_aggregates, report.pruned_by_es
    );
    println!("=== leads, most statistically surprising first ===");
    for (rank, agg) in report.top.iter().enumerate() {
        println!("\n{}. [score {:.4}]", rank + 1, agg.score);
        // Histogram / heat map / table, depending on dimensionality
        // (the paper's Section 1 presentation rule).
        print!("{}", spade::core::viz::render(agg));
    }

    // The planted Luanda-Leaks lead: Angola dominating a netWorth aggregate.
    let lead = report
        .top
        .iter()
        .find(|t| t.mda.contains("netWorth") && t.dims.iter().any(|d| d == "nationality"));
    match lead {
        Some(t) => println!(
            "\n>>> lead found: \"{}\" — check the Angola group (Dos Santos pattern).",
            t.description()
        ),
        None => println!("\n(no nationality × netWorth lead in the top-k this seed)"),
    }
}
