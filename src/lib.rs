//! # Spade — Efficient Exploration of Interesting Aggregates in RDF Graphs
//!
//! A Rust implementation of the SIGMOD 2021 paper by Diao, Guzewicz,
//! Manolescu and Mazuran: given an RDF graph `G`, an integer `k`, and an
//! interestingness function `h`, Spade automatically identifies, enumerates,
//! and efficiently evaluates the multidimensional aggregate queries (MDAs)
//! whose results score highest under `h`.
//!
//! ```
//! use spade::prelude::*;
//!
//! // Load a graph (here: the paper's Figure 1 running example).
//! let mut graph = spade::datagen::ceos_figure1();
//!
//! // Ask for the 5 most interesting aggregates by variance.
//! let config = SpadeConfig {
//!     k: 5,
//!     min_cfs_size: 2,          // the example graph has 2 CEOs
//!     max_distinct_ratio: 5.0,  // tiny graph: allow high-cardinality dims
//!     ..SpadeConfig::default()
//! };
//! let report = Spade::new(config).run(&mut graph);
//!
//! assert_eq!(report.top.len(), 5);
//! for aggregate in &report.top {
//!     println!("{:10.2}  {}", aggregate.score, aggregate.description());
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`rdf`] | triple store, dictionary, N-Triples I/O, RDFS saturation |
//! | [`summary`] | RDFQuotient-style structural summaries |
//! | [`storage`] | CFS tables, attribute columns, pre-aggregated measures |
//! | [`bitmap`] | Roaring-style bitmaps (cube cells, tidsets, samples) |
//! | [`stats`] | interestingness functions, Delta-Method CIs, sampling |
//! | [`cube`] | MVDCube, ArrayCube and PGCube baselines, lattices/MMST, ARM |
//! | [`core`] | the Spade pipeline: derivations, CFS selection, enumeration, evaluation, top-k |
//! | [`store`] | zero-copy single-file snapshots of the offline state |
//! | [`datagen`] | synthetic benchmark and simulated real-world graphs |

pub use spade_bitmap as bitmap;
pub use spade_core as core;
pub use spade_cube as cube;
pub use spade_datagen as datagen;
pub use spade_rdf as rdf;
pub use spade_stats as stats;
pub use spade_storage as storage;
pub use spade_store as store;
pub use spade_summary as summary;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use spade_core::{Spade, SpadeConfig, SpadeReport, TopAggregate};
    pub use spade_cube::{mvd_cube, CubeSpec, MeasureSpec, MvdCubeOptions};
    pub use spade_rdf::{parse_ntriples, Graph, Term};
    pub use spade_stats::Interestingness;
    pub use spade_storage::AggFn;
}
