//! The paper's central correctness claim, checked exhaustively: MVDCube
//! computes, for *every* lattice node, exactly what a naive per-node
//! group-by over the raw multi-valued data computes — even with
//! multi-valued and missing dimensions and multi-valued measures — while
//! the classical ArrayCube only agrees on nodes retaining all multi-valued
//! dimensions (Theorem 1).

use proptest::prelude::*;
use spade::cube::result::NULL_CODE;
use spade::cube::{array_cube, mvd_cube, pg_cube, MvdCubeOptions, PgCubeVariant};
use spade::prelude::*;
use spade::storage::{CategoricalColumn, FactId, NumericColumn};
use std::collections::{BTreeMap, BTreeSet};

/// Raw data: per fact, per dimension a set of value codes; one multi-valued
/// numeric measure.
#[derive(Clone, Debug)]
struct RawData {
    dims: Vec<Vec<Vec<u8>>>, // dims[d][fact] = distinct value codes
    measure: Vec<Vec<i32>>,  // measure[fact] = raw values
}

fn raw_data(n_dims: usize, max_facts: usize) -> impl Strategy<Value = RawData> {
    let facts = 1..=max_facts;
    facts.prop_flat_map(move |n| {
        let dim = prop::collection::vec(
            prop::collection::btree_set(0u8..4, 0..=3)
                .prop_map(|s| s.into_iter().collect::<Vec<u8>>()),
            n,
        );
        let dims = prop::collection::vec(dim, n_dims);
        let measure = prop::collection::vec(prop::collection::vec(-50i32..50, 0..=2), n);
        (dims, measure).prop_map(|(dims, measure)| RawData { dims, measure })
    })
}

/// Naive reference: for each node mask, group facts by their (projected)
/// value combinations and aggregate each fact exactly once per group.
type Reference = BTreeMap<u32, BTreeMap<Vec<u32>, (u64, Option<(u64, f64, f64, f64)>)>>;

fn brute_force(data: &RawData) -> Reference {
    let n_dims = data.dims.len();
    let n_facts = data.measure.len();
    let mut out: Reference = BTreeMap::new();
    for mask in 0u32..(1 << n_dims) {
        let node = out.entry(mask).or_default();
        for fact in 0..n_facts {
            // Translation rule: facts with no value on any lattice dimension
            // are excluded from the cube entirely.
            if (0..n_dims).all(|d| data.dims[d][fact].is_empty()) {
                continue;
            }
            // The fact's distinct keys in this node: cross product of its
            // values along the node's dims (null when missing).
            let mut keys: Vec<Vec<u32>> = vec![vec![]];
            for d in 0..n_dims {
                if mask & (1 << d) == 0 {
                    continue;
                }
                let vals = &data.dims[d][fact];
                let mut next = Vec::new();
                for key in &keys {
                    if vals.is_empty() {
                        let mut k = key.clone();
                        k.push(NULL_CODE);
                        next.push(k);
                    } else {
                        for &v in vals {
                            let mut k = key.clone();
                            k.push(v as u32);
                            next.push(k);
                        }
                    }
                }
                keys = next;
            }
            keys.sort();
            keys.dedup();
            for key in keys {
                let entry = node.entry(key).or_insert((0, None));
                entry.0 += 1; // each fact once per group
                let values = &data.measure[fact];
                if !values.is_empty() {
                    let (c, s, lo, hi) =
                        entry.1.get_or_insert((0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
                    *c += values.len() as u64;
                    *s += values.iter().map(|&v| v as f64).sum::<f64>();
                    *lo = lo.min(*values.iter().min().unwrap() as f64);
                    *hi = hi.max(*values.iter().max().unwrap() as f64);
                }
            }
        }
    }
    out
}

/// Builds storage columns from the raw data. Value labels are zero-padded
/// so sorted label order equals numeric code order.
fn columns(data: &RawData) -> (Vec<CategoricalColumn>, NumericColumn) {
    let n_facts = data.measure.len();
    let dims = data
        .dims
        .iter()
        .enumerate()
        .map(|(di, per_fact)| {
            let mut b = spade::storage::CategoricalColumnBuilder::new(format!("d{di}"));
            for (fact, vals) in per_fact.iter().enumerate() {
                for &v in vals {
                    b.add(FactId(fact as u32), format!("v{v:03}"));
                }
            }
            b.build(n_facts)
        })
        .collect();
    let mut m = spade::storage::NumericColumnBuilder::new("m");
    for (fact, vals) in data.measure.iter().enumerate() {
        for &v in vals {
            m.add(FactId(fact as u32), v as f64);
        }
    }
    (dims, m.build(n_facts))
}

/// Remaps a cube group key (codes into the column's sorted label space)
/// back to raw value codes, so it can be compared with the reference.
fn remap_key(key: &[u32], dims: &[&CategoricalColumn], node_dims: &[usize]) -> Vec<u32> {
    key.iter()
        .zip(node_dims)
        .map(|(&code, &d)| {
            if code == NULL_CODE {
                NULL_CODE
            } else {
                // label "v007" → 7
                dims[d].label(code)[1..].parse::<u32>().unwrap()
            }
        })
        .collect()
}

fn check_against_reference(data: &RawData, chunk: Option<u32>) -> Result<(), TestCaseError> {
    let (dim_cols, measure_col) = columns(data);
    let preagg = measure_col.preaggregate();
    let dims: Vec<&CategoricalColumn> = dim_cols.iter().collect();
    let spec = CubeSpec::new(
        dims.clone(),
        vec![MeasureSpec {
            preagg: &preagg,
            fns: vec![AggFn::Count, AggFn::Sum, AggFn::Min, AggFn::Max, AggFn::Avg],
        }],
        data.measure.len(),
    );
    let result = mvd_cube(&spec, &MvdCubeOptions { chunk_size: chunk, ..Default::default() });
    let reference = brute_force(data);

    for (mask, ref_groups) in &reference {
        let ref_nonempty: BTreeMap<_, _> = ref_groups.iter().collect();
        let node = result.node(*mask);
        let empty = Default::default();
        let got = node.map(|n| &n.groups).unwrap_or(&empty);
        prop_assert_eq!(
            got.len(),
            ref_nonempty.len(),
            "group count mismatch at node {:b}",
            mask
        );
        for (key, values) in got {
            let raw_key = remap_key(key, &dims, &result.node(*mask).unwrap().dims);
            let (ref_count, ref_measure) = ref_nonempty
                .get(&raw_key)
                .unwrap_or_else(|| panic!("unexpected group {raw_key:?} at node {mask:b}"));
            // MDA 0 = count(*) over facts.
            prop_assert_eq!(values[0], Some(*ref_count as f64));
            match ref_measure {
                None => {
                    for v in &values[1..] {
                        prop_assert_eq!(*v, None);
                    }
                }
                Some((c, s, lo, hi)) => {
                    prop_assert_eq!(values[1], Some(*c as f64)); // count(m)
                    let sum = values[2].unwrap();
                    prop_assert!((sum - s).abs() < 1e-9);
                    prop_assert_eq!(values[3], Some(*lo)); // min
                    prop_assert_eq!(values[4], Some(*hi)); // max
                    let avg = values[5].unwrap();
                    prop_assert!((avg - s / *c as f64).abs() < 1e-9);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MVDCube == brute force on every lattice node, 2-dimensional case.
    #[test]
    fn mvdcube_matches_bruteforce_2d(data in raw_data(2, 24)) {
        check_against_reference(&data, None)?;
    }

    /// Same with 3 dimensions and forced multi-partition evaluation.
    #[test]
    fn mvdcube_matches_bruteforce_3d_chunked(data in raw_data(3, 16)) {
        check_against_reference(&data, Some(2))?;
    }

    /// ArrayCube agrees with MVDCube exactly on the nodes that retain all
    /// multi-valued dimensions, and at the root (Theorem 1).
    #[test]
    fn arraycube_correct_only_on_retaining_nodes(data in raw_data(2, 16)) {
        let (dim_cols, measure_col) = columns(&data);
        let preagg = measure_col.preaggregate();
        let dims: Vec<&CategoricalColumn> = dim_cols.iter().collect();
        let spec = CubeSpec::new(
            dims,
            vec![MeasureSpec { preagg: &preagg, fns: vec![AggFn::Sum] }],
            data.measure.len(),
        );
        let opts = MvdCubeOptions::default();
        let correct = mvd_cube(&spec, &opts);
        let classical = array_cube(&spec, &opts);
        let multi_valued: BTreeSet<usize> = (0..2)
            .filter(|&d| (0..data.measure.len()).any(|f| data.dims[d][f].len() > 1))
            .collect();
        for (mask, node) in &correct.nodes {
            let retains_all = multi_valued.iter().all(|&d| mask & (1 << d) != 0);
            if retains_all {
                let other = classical.node(*mask).unwrap();
                prop_assert_eq!(node.groups.len(), other.groups.len());
                for (key, vals) in &node.groups {
                    let ovals = &other.groups[key];
                    for (a, b) in vals.iter().zip(ovals) {
                        match (a, b) {
                            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                            (a, b) => prop_assert_eq!(a, b),
                        }
                    }
                }
            }
        }
    }

    /// PGCube^d's fact counts always bound the correct counts from above
    /// (overcounting — the paper's "p can only be higher than or equal").
    #[test]
    fn pgcube_counts_bound_from_above(data in raw_data(2, 16)) {
        let (dim_cols, measure_col) = columns(&data);
        let preagg = measure_col.preaggregate();
        let dims: Vec<&CategoricalColumn> = dim_cols.iter().collect();
        let spec = CubeSpec::new(
            dims,
            vec![MeasureSpec { preagg: &preagg, fns: vec![AggFn::Sum] }],
            data.measure.len(),
        );
        let opts = MvdCubeOptions::default();
        let correct = mvd_cube(&spec, &opts);
        let star = pg_cube(&spec, PgCubeVariant::Star, &opts);
        for (mask, node) in &correct.nodes {
            let other = star.node(*mask).unwrap();
            for (key, vals) in &node.groups {
                let ovals = &other.groups[key];
                if let (Some(m), Some(p)) = (vals[0], ovals[0]) {
                    prop_assert!(p >= m - 1e-9, "count {p} < correct {m} at {mask:b} {key:?}");
                }
            }
        }
    }
}
