//! The paper's experimental *shapes* (its R1–R7 remarks), asserted as
//! integration tests at small scale. Timing-based remarks (R2, R3, R6, R9)
//! are exercised by the harness binaries instead — wall-clock assertions
//! are too flaky for CI — but every structural/correctness remark is
//! checked here.

use spade::prelude::*;
use spade_bench::{
    analyzed_lattices, compare_systems, evaluate_all_mvd, evaluate_all_mvd_es,
    experiment_config, regen_graph, topk_accuracy,
};
use spade_cube::EarlyStopConfig;
use spade_datagen::RealisticConfig;

const SCALE: usize = 150;

fn cfg() -> RealisticConfig {
    RealisticConfig { scale: SCALE, seed: 17 }
}

/// R1 — "derivations increase the total number of enumerated MDAs" and the
/// interestingness of the best aggregates, on every native-RDF graph.
#[test]
fn r1_derivations_enrich_the_search_space() {
    for name in ["CEOs", "DBLP", "Foodista", "NASA", "Nobel"] {
        let mut g_wod = regen_graph(name, &cfg());
        let mut g_wd = regen_graph(name, &cfg());
        let base = SpadeConfig { k: usize::MAX, ..experiment_config() };
        let wod = Spade::new(base.clone().without_derivations()).run(&mut g_wod);
        let wd = Spade::new(base).run(&mut g_wd);
        assert!(
            wd.profile.aggregates > wod.profile.aggregates,
            "{name}: wD {} ≤ woD {}",
            wd.profile.aggregates,
            wod.profile.aggregates
        );
        let best = |r: &spade::core::SpadeReport| r.top.first().map(|t| t.score).unwrap_or(0.0);
        assert!(best(&wd) >= best(&wod), "{name}: best wD score regressed");
    }
}

/// R1's Airline counterpoint: the converted-relational graph derives
/// nothing, so woD and wD coincide.
#[test]
fn r1_airline_has_no_derivations() {
    let mut g = regen_graph("Airline", &cfg());
    let report = Spade::new(experiment_config()).run(&mut g);
    assert_eq!(report.profile.derivations.total(), 0);
}

/// R4 — both PGCube variants are wrong on a noticeable share of aggregates
/// on the multi-valued graphs; PGCube^d repairs some but not all; the
/// single-valued Airline graph has zero errors.
#[test]
fn r4_pgcube_error_counts() {
    let mut airline = regen_graph("Airline", &cfg());
    let a = compare_systems("Airline", &mut airline, &experiment_config());
    assert_eq!(a.star_report.wrong_aggregates, 0, "Airline is single-valued");
    assert_eq!(a.distinct_report.wrong_aggregates, 0);

    for name in ["CEOs", "Nobel"] {
        let mut g = regen_graph(name, &cfg());
        let c = compare_systems(name, &mut g, &experiment_config());
        assert!(c.star_report.wrong_aggregates > 0, "{name}");
        assert!(c.star_report.wrong_fraction() > 0.05, "{name}: error share too low");
        assert!(
            c.distinct_report.wrong_aggregates <= c.star_report.wrong_aggregates,
            "{name}: count(distinct) must not add errors"
        );
        assert!(c.distinct_report.wrong_aggregates > 0, "{name}: sums stay wrong");
    }
}

/// R5 — error ratios are overcounts and reach multiples of the true value.
#[test]
fn r5_error_ratios_are_large_overcounts() {
    let mut g = regen_graph("CEOs", &cfg());
    let c = compare_systems("CEOs", &mut g, &experiment_config());
    let max = c.distinct_report.max_ratio().expect("errors exist");
    assert!(max > 2.0, "worst ratio {max} too small");
    for (label, ratios) in &c.distinct_report.error_ratios {
        if label.starts_with("count") || label.starts_with("sum") {
            assert!(ratios.iter().all(|&r| r > 1.0), "{label} undercounts");
        }
    }
}

/// R7 — early-stop stays accurate: on every graph, with k = 5 and the
/// paper's 60×2 sampling, the ES top-k matches the exact top-k well.
#[test]
fn r7_early_stop_accuracy() {
    for name in ["Airline", "CEOs", "NASA", "Nobel"] {
        let mut g = regen_graph(name, &cfg());
        let config = experiment_config();
        let prepared = analyzed_lattices(&mut g, &config);
        let (full, _) = evaluate_all_mvd(&prepared, &config);
        let es_cfg = EarlyStopConfig { k: 5, ..Default::default() };
        let (es, pruned, total, _) = evaluate_all_mvd_es(&prepared, &config, &es_cfg);
        let acc = topk_accuracy(&full, &es, Interestingness::Variance, 5);
        assert!(acc >= 0.8, "{name}: accuracy {acc}");
        assert!(pruned <= total);
    }
}

/// The Figure 6(c) story: on NASA, the crewed/experiment disciplines have
/// far heavier spacecraft, and the aggregate surfaces in the top-k.
#[test]
fn figure6c_mass_by_discipline() {
    let mut g = regen_graph("NASA", &cfg());
    let report = Spade::new(SpadeConfig {
        k: 15,
        dimension_stop_list: vec!["name".into()],
        ..experiment_config()
    })
    .run(&mut g);
    let story = report
        .top
        .iter()
        .find(|t| t.mda.contains("mass") && t.dims.iter().any(|d| d == "discipline"))
        .expect("mass-by-discipline aggregate in top-k");
    // Human crew must be among the heaviest groups shown.
    assert!(
        story.sample_groups.iter().take(4).any(|(l, _)| l.contains("Human crew")),
        "groups: {:?}",
        story.sample_groups
    );
}
