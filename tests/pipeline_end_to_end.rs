//! End-to-end pipeline tests across the facade crate: N-Triples in, top-k
//! aggregates out, on every simulated dataset.

use spade::datagen::{realistic, RealisticConfig};
use spade::prelude::*;

fn config() -> SpadeConfig {
    SpadeConfig { k: 10, min_support: 0.3, min_cfs_size: 20, ..SpadeConfig::default() }
}

#[test]
fn every_simulated_dataset_yields_insights() {
    let cfg = RealisticConfig { scale: 150, seed: 31 };
    for dataset in realistic::all(&cfg) {
        let name = dataset.name;
        let mut graph = dataset.graph;
        let report = Spade::new(config()).run(&mut graph);
        assert!(report.profile.cfs_count > 0, "{name}: no CFS");
        assert!(report.profile.aggregates > 0, "{name}: no aggregates");
        assert!(!report.top.is_empty(), "{name}: empty top-k");
        for t in &report.top {
            assert!(t.score >= 0.0);
            assert!(!t.mda.is_empty());
            assert!(t.groups > 0);
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut g = realistic::nobel(&RealisticConfig { scale: 150, seed: 77 });
        let report = Spade::new(config()).run(&mut g);
        report.top.iter().map(|t| (t.description(), t.score.to_bits())).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn ntriples_roundtrip_preserves_results() {
    let mut direct = realistic::foodista(&RealisticConfig { scale: 120, seed: 9 });
    let nt = spade::rdf::write_ntriples(&direct);
    let mut parsed = parse_ntriples(&nt).expect("self-produced N-Triples parse");
    assert_eq!(direct.len(), parsed.len());

    let a = Spade::new(config()).run(&mut direct);
    let b = Spade::new(config()).run(&mut parsed);
    assert_eq!(
        a.top.iter().map(TopAggregate::description).collect::<Vec<_>>(),
        b.top.iter().map(TopAggregate::description).collect::<Vec<_>>()
    );
}

#[test]
fn interestingness_function_changes_ranking_dimension() {
    let mut g1 = realistic::ceos(&RealisticConfig { scale: 200, seed: 3 });
    let mut g2 = realistic::ceos(&RealisticConfig { scale: 200, seed: 3 });
    let variance = Spade::new(config()).run(&mut g1);
    let skew =
        Spade::new(SpadeConfig { interestingness: Interestingness::Skewness, ..config() })
            .run(&mut g2);
    // Scores live on different scales; both must produce valid rankings.
    assert!(variance.top[0].score >= variance.top.last().unwrap().score);
    assert!(skew.top[0].score >= skew.top.last().unwrap().score);
    // Skewness is scale-free: scores stay small; variance scores explode on
    // netWorth sums. This sanity-checks that `h` is actually switched.
    assert!(variance.top[0].score > 1e6);
    assert!(skew.top[0].score < 1e3);
}

#[test]
fn early_stop_report_fields_are_consistent() {
    let mut g = realistic::nobel(&RealisticConfig { scale: 200, seed: 5 });
    let report = Spade::new(config().with_early_stop()).run(&mut g);
    assert!(report.evaluated_aggregates > 0);
    assert!(report.evaluated_aggregates + report.pruned_by_es >= report.profile.aggregates);
}

#[test]
fn stop_list_removes_dimension_from_results() {
    let mut g = realistic::ceos(&RealisticConfig { scale: 200, seed: 3 });
    let report =
        Spade::new(SpadeConfig { dimension_stop_list: vec!["nationality".into()], ..config() })
            .run(&mut g);
    for t in &report.top {
        assert!(
            t.dims.iter().all(|d| d != "nationality"),
            "stop-listed dimension used by {}",
            t.description()
        );
    }
}

#[test]
fn airline_has_no_derivations_but_still_finds_aggregates() {
    // Experiment 1's baseline: a converted-relational graph derives nothing.
    let mut g = realistic::airline(&RealisticConfig { scale: 300, seed: 3 });
    let report = Spade::new(config()).run(&mut g);
    assert_eq!(report.profile.derivations.path, 0, "no links → no paths");
    assert_eq!(report.profile.derivations.count, 0, "single-valued → no counts");
    assert_eq!(report.profile.derivations.kw, 0, "numeric data → no keywords");
    assert!(report.profile.aggregates > 0);
}
