//! Robustness: degenerate and adversarial inputs through the full stack.

use spade::prelude::*;
use spade::rdf::Graph;

fn lenient_config() -> SpadeConfig {
    SpadeConfig { min_cfs_size: 1, min_support: 0.1, ..SpadeConfig::default() }
}

#[test]
fn empty_graph_produces_empty_report() {
    let mut g = Graph::new();
    let report = Spade::new(lenient_config()).run(&mut g);
    assert_eq!(report.profile.triples, 0);
    assert_eq!(report.profile.cfs_count, 0);
    assert!(report.top.is_empty());
}

#[test]
fn graph_with_single_triple() {
    let mut g = Graph::new();
    g.insert(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::int(1));
    let report = Spade::new(lenient_config()).run(&mut g);
    // One subject, no type: only the summary-based CFS (a single node) can
    // exist; nothing scores > 0, but nothing crashes either.
    assert_eq!(report.profile.triples, 1);
}

#[test]
fn all_facts_identical_scores_zero() {
    let mut g = Graph::new();
    for i in 0..50 {
        let n = Term::iri(format!("http://x/n{i}"));
        g.insert(n.clone(), Term::iri(spade::rdf::vocab::RDF_TYPE), Term::iri("http://x/T"));
        g.insert(n.clone(), Term::iri("http://x/d"), Term::lit("same"));
        g.insert(n.clone(), Term::iri("http://x/m"), Term::int(7));
    }
    let report = Spade::new(lenient_config()).run(&mut g);
    // Uniform data: every aggregate is uninteresting, and score-0
    // aggregates are filtered from the top-k entirely (Figure 8 semantics).
    assert!(report.top.iter().all(|t| t.score > 0.0));
}

#[test]
fn unicode_labels_survive_the_pipeline() {
    // 12 facts over 4 cities (ratio 1/3 → dimension) with a distinct-per-
    // fact measure (ratio 1.0 → measure only).
    let config = SpadeConfig { max_distinct_ratio: 0.5, ..lenient_config() };
    let mut g = Graph::new();
    let cities = ["Zürich", "北京", "São Paulo", "Kраків"];
    for i in 0..12 {
        let n = Term::iri(format!("http://x/n{i}"));
        g.insert(n.clone(), Term::iri(spade::rdf::vocab::RDF_TYPE), Term::iri("http://x/T"));
        g.insert(n.clone(), Term::iri("http://x/city"), Term::lit(cities[i % 4]));
        g.insert(n.clone(), Term::iri("http://x/m"), Term::num(i as f64 * 10.0 + 0.5));
    }
    let report = Spade::new(config).run(&mut g);
    let with_city = report
        .top
        .iter()
        .find(|t| t.dims.iter().any(|d| d == "city"))
        .expect("city dimension used");
    assert!(with_city.sample_groups.iter().any(|(l, _)| l.contains("Zürich")));
    // Round-trip through N-Triples too.
    let nt = spade::rdf::write_ntriples(&g);
    let g2 = parse_ntriples(&nt).unwrap();
    assert_eq!(g2.len(), g.len());
}

#[test]
fn k_zero_and_k_huge() {
    let mut g = spade::datagen::ceos_figure1();
    let zero =
        Spade::new(SpadeConfig { k: 0, min_cfs_size: 2, ..lenient_config() }).run(&mut g);
    assert!(zero.top.is_empty());
    let mut g = spade::datagen::ceos_figure1();
    let huge = Spade::new(SpadeConfig {
        k: usize::MAX,
        min_cfs_size: 2,
        max_distinct_ratio: 5.0,
        ..lenient_config()
    })
    .run(&mut g);
    assert!(!huge.top.is_empty());
}

#[test]
fn negative_measure_values() {
    // Temperatures below zero must not break min/max/variance logic.
    let mut g = Graph::new();
    for i in 0..30 {
        let n = Term::iri(format!("http://x/n{i}"));
        g.insert(n.clone(), Term::iri(spade::rdf::vocab::RDF_TYPE), Term::iri("http://x/T"));
        g.insert(
            n.clone(),
            Term::iri("http://x/region"),
            Term::lit(if i % 3 == 0 { "arctic" } else { "tropics" }),
        );
        // Near-continuous values: too many distinct values to qualify as a
        // dimension, so `temp` stays a pure measure.
        g.insert(
            n.clone(),
            Term::iri("http://x/temp"),
            Term::num(if i % 3 == 0 {
                -40.0 - i as f64 * 1.37
            } else {
                30.0 + i as f64 * 0.61
            }),
        );
    }
    let report = Spade::new(lenient_config()).run(&mut g);
    let temp_agg = report
        .top
        .iter()
        .find(|t| t.mda.contains("temp"))
        .expect("temperature aggregate found");
    assert!(temp_agg.sample_groups.iter().any(|(_, v)| *v < 0.0));
}

#[test]
fn cyclic_graph_saturation_terminates() {
    // subClassOf cycle: saturation must reach a fixpoint, not loop.
    let mut g = Graph::new();
    g.insert(
        Term::iri("http://x/A"),
        Term::iri(spade::rdf::vocab::RDFS_SUBCLASSOF),
        Term::iri("http://x/B"),
    );
    g.insert(
        Term::iri("http://x/B"),
        Term::iri(spade::rdf::vocab::RDFS_SUBCLASSOF),
        Term::iri("http://x/A"),
    );
    g.insert(
        Term::iri("http://x/n"),
        Term::iri(spade::rdf::vocab::RDF_TYPE),
        Term::iri("http://x/A"),
    );
    spade::rdf::saturate(&mut g);
    let b = g.dict.id_of(&Term::iri("http://x/B")).unwrap();
    assert_eq!(g.nodes_of_type(b).len(), 1);
}

#[test]
fn deep_property_chain_paths() {
    // a → b → c → d: only length-1 paths are derived, but longer chains
    // must not confuse the enumeration.
    let mut g = Graph::new();
    for i in 0..20 {
        let a = Term::iri(format!("http://x/a{i}"));
        let b = Term::iri(format!("http://x/b{i}"));
        let c = Term::iri(format!("http://x/c{i}"));
        g.insert(a.clone(), Term::iri(spade::rdf::vocab::RDF_TYPE), Term::iri("http://x/A"));
        g.insert(a.clone(), Term::iri("http://x/next"), b.clone());
        g.insert(b.clone(), Term::iri("http://x/next"), c.clone());
        g.insert(c.clone(), Term::iri("http://x/kind"), Term::lit(["x", "y"][i % 2]));
        g.insert(a.clone(), Term::iri("http://x/m"), Term::int(i as i64));
    }
    let report = Spade::new(lenient_config()).run(&mut g);
    assert!(report.profile.derivations.path > 0);
}
