//! Direct checks of the paper's named claims on the exact running example
//! (Figure 1's graph, end to end through the real pipeline modules, not
//! hand-built columns).

use spade::core::{analysis, cfs, offline};
use spade::cube::{compare_results, Lattice};
use spade::cube::{mvd_cube, pg_cube, MvdCubeOptions, PgCubeVariant};
use spade::prelude::*;

/// Builds the Example 3 cube spec from the Figure 1 *graph* via the actual
/// offline + online analysis (path derivation included).
fn example3_via_pipeline() -> (spade::core::CfsAnalysis, Vec<usize>, usize) {
    let graph = spade::datagen::ceos_figure1();
    let config = SpadeConfig {
        min_cfs_size: 2,
        min_support: 0.4,
        max_distinct_ratio: 5.0,
        ..SpadeConfig::default()
    };
    let stats = offline::analyze(&graph);
    let (derived, _) = offline::enumerate_derivations(&graph, &stats, &config);
    let cfs_list = cfs::select(&graph, &[cfs::CfsStrategy::TypeBased], &config);
    let ceo = cfs_list.iter().find(|c| c.name == "type:CEO").unwrap();
    let a = analysis::analyze_cfs(&graph, ceo, &derived, &config);
    let idx = |name: &str| {
        a.attributes
            .iter()
            .position(|x| x.def.name == name)
            .unwrap_or_else(|| panic!("attribute {name} missing"))
    };
    let dims = vec![idx("nationality"), idx("gender"), idx("company/area")];
    let net_worth = idx("netWorth");
    (a, dims, net_worth)
}

fn spec_of<'a>(
    a: &'a spade::core::CfsAnalysis,
    dims: &[usize],
    measure: usize,
) -> CubeSpec<'a> {
    CubeSpec::new(
        dims.iter().map(|&d| a.attributes[d].categorical.as_ref().unwrap()).collect(),
        vec![MeasureSpec {
            preagg: a.attributes[measure].numeric.as_ref().unwrap(),
            fns: vec![AggFn::Sum, AggFn::Avg],
        }],
        a.n_facts(),
    )
}

/// Example 3 through the full stack: the path derivation `company/area`
/// comes from the graph, and "number of CEOs by area" counts Manufacturer
/// CEOs as 2 (both CEOs), not 5.
#[test]
fn example3_counts_from_real_graph() {
    let (a, dims, net_worth) = example3_via_pipeline();
    let spec = spec_of(&a, &dims, net_worth);
    let result = mvd_cube(&spec, &MvdCubeOptions::default());
    let area_node = result.node(0b100).unwrap();
    let col = a.attributes[dims[2]].categorical.as_ref().unwrap();
    let manufacturer_code =
        (0..col.distinct_values() as u32).find(|&c| col.label(c) == "Manufacturer").unwrap();
    assert_eq!(area_node.groups[&vec![manufacturer_code]][0], Some(2.0));
}

/// Lemma 1 on the real graph: PGCube* disagrees with MVDCube exactly
/// because of the multi-valued dims, and the error ratios all overcount.
#[test]
fn lemma1_errors_from_real_graph() {
    let (a, dims, net_worth) = example3_via_pipeline();
    let spec = spec_of(&a, &dims, net_worth);
    let opts = MvdCubeOptions::default();
    let correct = mvd_cube(&spec, &opts);
    let star = pg_cube(&spec, PgCubeVariant::Star, &opts);
    let report = compare_results(&correct, &star, 1e-9);
    assert!(report.wrong_aggregates > 0);
    assert!(report.max_ratio().unwrap() > 1.0);
    // "p can only be higher than or equal to the correct value m" — for
    // count and sum aggregates (averages can drift either way since both
    // numerator and denominator are inflated).
    for (label, ratios) in &report.error_ratios {
        if label.starts_with("count") || label.starts_with("sum") {
            for &r in ratios {
                assert!(r > 1.0, "{label}: ratio {r}");
            }
        }
    }
}

/// Theorem 1(ii) quantitatively: with K multi-valued dimensions out of N,
/// the nodes PGCube gets right are at most 2^{N−K} per MDA.
#[test]
fn theorem1_bound_from_real_graph() {
    let (a, dims, net_worth) = example3_via_pipeline();
    let spec = spec_of(&a, &dims, net_worth);
    let multi_valued = spec.multi_valued_dims();
    // nationality and company/area are multi-valued on this graph; gender
    // is not.
    assert_eq!(multi_valued, vec![0, 2]);
    let lattice = Lattice::new(spec.domain_sizes(), vec![8, 8, 8]);
    assert_eq!(lattice.max_correct_nodes(&multi_valued), 2);

    let opts = MvdCubeOptions::default();
    let correct = mvd_cube(&spec, &opts);
    let star = pg_cube(&spec, PgCubeVariant::Star, &opts);
    // Count nodes whose count(*) agrees everywhere.
    let mut correct_nodes = 0;
    for (mask, node) in &correct.nodes {
        let other = star.node(*mask).unwrap();
        let agree = node.groups.iter().all(|(k, v)| {
            other.groups.get(k).is_some_and(|ov| match (v[0], ov[0]) {
                (Some(x), Some(y)) => (x - y).abs() < 1e-9,
                (a, b) => a == b,
            })
        }) && other.groups.len() == node.groups.len();
        if agree {
            correct_nodes += 1;
        }
    }
    assert!(
        correct_nodes as u64 <= lattice.max_correct_nodes(&multi_valued),
        "{correct_nodes} nodes correct, bound is 2"
    );
}

/// Example 1 through the real analysis path: "Sum of the net worth of CEOs
/// … grouped by country of origin" evaluates to {(Angola, $2.8B)} — n2 does
/// not contribute as it lacks the countryOfOrigin dimension. (On this toy
/// graph the aggregate has a single group, hence variance 0; the pipeline
/// correctly ranks it as uninteresting, so we check the evaluation layer.)
#[test]
fn example1_result_from_real_graph() {
    let (a, _, net_worth) = example3_via_pipeline();
    let coo = a
        .attributes
        .iter()
        .position(|x| x.def.name == "countryOfOrigin")
        .expect("countryOfOrigin analyzed");
    let spec = spec_of(&a, &[coo], net_worth);
    let result = mvd_cube(&spec, &MvdCubeOptions::default());
    let node = result.node(0b1).unwrap();
    assert_eq!(node.visible_group_count(), 1);
    assert_eq!(node.mda_values(1), vec![2.8e9]); // sum(netWorth)
}

/// Example 2's semantics through the pipeline: Ghosn's four nationalities
/// each receive his age with avg 66 and Dos Santos misses the measure —
/// "all obtained from n2 given its four distinct values of nationality."
#[test]
fn example2_multi_valued_group_contributions() {
    let mut graph = spade::datagen::ceos_figure1();
    // Drop Dos Santos' age to mirror Example 2 exactly ("Although n1 has
    // both dimensions, it does not contribute … as it misses the age
    // measure" — in Figure 1 n1 does carry age, so Example 2's text sets
    // the expectation only for n2's groups).
    let config = SpadeConfig {
        k: usize::MAX,
        min_cfs_size: 2,
        min_support: 0.4,
        max_distinct_ratio: 5.0,
        ..SpadeConfig::default()
    };
    let report = Spade::new(config).run(&mut graph);
    let agg = report
        .top
        .iter()
        .find(|t| t.mda == "avg(age)" && t.dims == ["nationality"])
        .expect("avg(age) by nationality enumerated");
    // Five nationality groups: Angola (47) + Ghosn's four (66 each).
    assert_eq!(agg.groups, 5);
    let sixty_sixes =
        agg.sample_groups.iter().filter(|(_, v)| (*v - 66.0).abs() < 1e-9).count();
    assert_eq!(sixty_sixes, 4);
}
