//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so external
//! dependencies are vendored as thin API-compatible wrappers over `std`.
//! Semantics match `parking_lot` where it differs from `std::sync`:
//! `lock()` returns the guard directly (no poisoning — a panicked holder
//! does not poison the mutex for later lockers).

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (std-backed, non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
