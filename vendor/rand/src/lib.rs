//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small, deterministic generator behind the familiar `rand` API surface:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — the same construction `SmallRng` uses upstream on 64-bit
//! targets — so sequences are stable across runs and platforms, which is
//! all the workspace relies on (datagen seeds, reservoir sampling,
//! deterministic tests). It is NOT cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A value that can be drawn uniformly from the "standard" distribution
/// (rand's `Standard`): full integer range, `[0, 1)` for floats.
pub trait StandardValue: Sized {
    /// Draws one value from `rng`.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            #[inline]
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for bool {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    #[inline]
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A type that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive); `lo < hi` required.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (inclusive); `lo <= hi` required.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add((reduce(rng.next_u64(), span)) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((reduce(rng.next_u64(), span + 1)) as $t)
            }
        }
    )*};
}
uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
}

/// Unbiased-enough modular reduction (multiply-shift; bias is < span/2^64,
/// irrelevant for simulation workloads).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The random generator interface (subset of rand 0.8's `Rng` + `RngCore`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a standard-distribution value (`[0,1)` for floats).
    #[inline]
    fn gen<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand seeds into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast, deterministic generator — xoshiro256++.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 never produces
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let x = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 should land near half over many draws.
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
    }
}
