//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so property tests run on a
//! vendored mini-harness with the same source-level API: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_flat_map`, `any::<T>()`,
//! ranges and `&str` character-class patterns as strategies,
//! `prop::collection::{vec, btree_set}`, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its index and message only;
//! * **deterministic** — the RNG is seeded from the test name, so failures
//!   reproduce exactly without a persistence file;
//! * `&str` strategies support character classes with quantifiers
//!   (`"[a-z]{1,8}"`, `"[ -~\n]{0,24}"`, concatenations), not full regex.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving one property test.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every run replays identically.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    #[inline]
    fn below(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result alias used by helper functions shared between property tests.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep single-core CI fast.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Object-safe; combinators require `Self: Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(&mut rng.0, self.start, self.end)
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(&mut rng.0, *self.start(), *self.end())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types generable by `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, spread over a broad range; avoids NaN/inf surprises.
        ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (`any::<u32>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice among boxed alternatives — built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// &str character-class patterns
// ---------------------------------------------------------------------------

/// One `[class]{m,n}` (or literal-char) element of a string pattern.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out: Vec<char> = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = it.next() {
        match c {
            ']' => return out,
            '\\' => {
                let e = it.next().expect("pattern: dangling escape");
                let lit = match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                out.push(lit);
                prev = Some(lit);
            }
            '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().unwrap();
                let hi = it.next().unwrap();
                assert!(lo <= hi, "pattern: inverted range {lo}-{hi}");
                // The range start is already in `out`.
                let mut ch = lo as u32 + 1;
                while ch <= hi as u32 {
                    if let Some(c) = char::from_u32(ch) {
                        out.push(c);
                    }
                    ch += 1;
                }
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    panic!("pattern: unterminated character class");
}

fn parse_quantifier(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if it.peek() != Some(&'{') {
        return (1, 1);
    }
    it.next();
    let mut spec = String::new();
    for c in it.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            };
            assert!(lo <= hi, "pattern: inverted quantifier");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("pattern: unterminated quantifier");
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let mut parts = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => parse_class(&mut it),
            '\\' => {
                let e = it.next().expect("pattern: dangling escape");
                vec![match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }]
            }
            other => vec![other],
        };
        assert!(!chars.is_empty(), "pattern: empty character class");
        let (min, max) = parse_quantifier(&mut it);
        parts.push(PatternPart { chars, min, max });
    }
    parts
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in parse_pattern(self) {
            let n = part.min + rng.below(part.max - part.min + 1);
            for _ in 0..n {
                out.push(part.chars[rng.below(part.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection size specifications accepted by `prop::collection::*`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Collection strategies (`prop::collection::vec`, `::btree_set`).
pub mod collection {
    use super::*;

    /// Generates `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s. Duplicates collapse, so the set may be smaller
    /// than the drawn size (upstream retries; the difference is immaterial
    /// for these tests).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirrors upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn` runs `cases` times over generated
/// inputs. No shrinking; failures report the case index and seed name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($params:tt)*) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        $crate::__proptest_case!(rng, ($($params)*), $body);
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {case}/{}: {e}",
                               stringify!($name), config.cases);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($params:tt)*) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name($($params)*) $body
            )+
        }
    };
}

/// Internal: binds `pat in strategy` parameters and runs one case body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, ($($pat:pat in $strategy:expr),+ $(,)?), $body:block) => {
        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
            $(
                let $pat = $crate::Strategy::generate(&$strategy, &mut $rng);
            )+
            $body
            ::std::result::Result::Ok(())
        })()
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::deterministic("string_pattern_shapes");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = crate::Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            assert!((1..=7).contains(&t.chars().count()));
        }
    }

    proptest! {
        #[test]
        fn ranges_and_collections(
            v in prop::collection::vec(0u32..100, 0..50),
            s in prop::collection::btree_set(0u8..10, 0..20),
            x in -5i32..5,
            f in 0.5f64..2.0,
        ) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(s.len() <= 10);
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![0u32..10, 90u32..100].prop_map(|x| x * 2)) {
            prop_assert!(v < 20 || (180..200).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn flat_map_dependent(pair in (1usize..10).prop_flat_map(|n|
            prop::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        )) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }
}
